//! 3D sparse SUMMA (Alg. 2).
//!
//! Each layer independently runs SUMMA2D on its slice of `A` and the
//! current batch's slice of `B`, producing the low-rank intermediate
//! `D̃⁽ᵏ⁾`. Each rank then splits `D̃⁽ᵏ⁾` into `l` column pieces
//! (*ColSplit*), exchanges piece `k'` with fiber member `k'`
//! (*AllToAll-Fiber*), and merges the `l` received pieces
//! (*Merge-Fiber*) into its final piece of `C` for this batch.

use crate::dist::{CPiece, DistMatrix};
use crate::exchange::ExchangePlan;
use crate::kernels::{KernelStrategy, LocalKernels};
use crate::memory::MemTracker;
use crate::summa2d::{
    summa2d_layer, summa2d_layer_pipelined, MergeSchedule, NextStage, OverlapMode, StageCarry,
};
use crate::Result;
use spgemm_simgrid::{Grid3D, PendingOp, Rank, Step};
use spgemm_sparse::ops::{block_range, col_block};
use spgemm_sparse::{CscMatrix, Semiring};
use std::sync::Arc;

/// Run one (batch of the) 3D multiplication. `b_batch` is this rank's
/// piece of `B` restricted to the batch's columns and `batch_global_cols`
/// the matching global column ids. Returns this rank's final `C` piece
/// for the batch (sorted columns).
///
/// Under [`OverlapMode::Overlapped`] the SUMMA stages run pipelined:
/// `carry` is the stage-0 broadcast pair the *previous* batch posted (or
/// `None` for the first batch), and `next` — when another batch follows —
/// names the next batch's stage-0 inputs so this batch's last stage can
/// post them; the returned `StagePending` must then be passed back in as
/// the next batch's `carry`. Blocking callers pass `None`/`None` and get
/// `None` back.
///
/// Cache-keying contract: when `plan` has its cross-iteration fetch cache
/// enabled, the caller must have called [`ExchangePlan::begin_batch`] with
/// this batch's index before entering — even under pipelining, sparse
/// fetches resolve at wait-time *inside this call*, so they key under the
/// batch set here, not under whichever batch posted the overlapped
/// broadcast. `batched_summa3d` upholds this; direct callers must too.
// SPMD plumbing (grid + matrices + policies); the paired-with-carry return
// is what the pipeline protocol is.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn summa3d_batch<S: Semiring>(
    rank: &mut Rank,
    grid: &Grid3D,
    a: &DistMatrix<S::T>,
    a_shared: &Arc<CscMatrix<S::T>>,
    b_batch: &Arc<CscMatrix<S::T>>,
    batch_global_cols: &[u32],
    piece_offsets: &[usize],
    kernels: &mut LocalKernels<S::T>,
    schedule: MergeSchedule,
    r: usize,
    mem: &mut MemTracker,
    plan: &mut ExchangePlan,
    overlap: OverlapMode,
    carry: StageCarry<S::T>,
    next: Option<&NextStage<S::T>>,
) -> Result<(CPiece<S::T>, StageCarry<S::T>)> {
    debug_assert_eq!(b_batch.ncols(), batch_global_cols.len());
    debug_assert_eq!(piece_offsets.len(), grid.l + 1);
    debug_assert_eq!(*piece_offsets.last().unwrap(), b_batch.ncols());
    debug_assert!(
        !plan.cache_enabled() || plan.batch_context().is_some(),
        "fetch cache enabled but no batch context: call plan.begin_batch() \
         before summa3d_batch or cached tiles will key incorrectly"
    );

    // Per-layer 2D SUMMA producing D̃⁽ᵏ⁾ (Alg. 2 line 3).
    let (d, next_carry) = match overlap {
        OverlapMode::Blocking => {
            debug_assert!(carry.is_none() && next.is_none(), "blocking mode never pipelines");
            let d = summa2d_layer::<S>(
                rank, grid, a, a_shared, b_batch, kernels, schedule, r, mem, plan,
            )?;
            (d, None)
        }
        OverlapMode::Overlapped => summa2d_layer_pipelined::<S>(
            rank, grid, a, a_shared, b_batch, kernels, schedule, r, mem, plan, carry, next,
        )?,
    };


    // ColSplit D̃⁽ᵏ⁾ into l column pieces (Alg. 2 line 4). Piece k' also
    // carries its global column ids so fiber peers can verify conformance.
    let l = grid.l;
    let mut parts: Vec<(CscMatrix<S::T>, Vec<u32>)> = Vec::with_capacity(l);
    let mut part_bytes: Vec<usize> = Vec::with_capacity(l);
    for kk in 0..l {
        let cols = piece_offsets[kk]..piece_offsets[kk + 1];
        let piece = col_block(&d, cols.clone());
        part_bytes.push(piece.modeled_bytes(r));
        let gcols = batch_global_cols[cols].to_vec();
        parts.push((piece, gcols));
    }
    // ColSplit replaces D with same-size pieces (streaming residency model,
    // consistent with Alg. 3's unmerged-high-water-mark accounting).
    drop(d);

    // AllToAll-Fiber (Alg. 2 line 5). In overlapped mode the exchange is
    // posted nonblocking — its completion then shares the timeline with
    // the already-posted next-batch stage-0 broadcasts, which the merge
    // phases below keep hiding (an immediate wait is cost-neutral with the
    // blocking call, see `spgemm_simgrid::nonblocking`).
    let sent_bytes: usize = part_bytes.iter().sum();
    let received = match overlap {
        OverlapMode::Blocking => {
            rank.alltoallv(&grid.fiber, parts, &part_bytes, Step::AllToAllFiber)
        }
        OverlapMode::Overlapped => rank
            .ialltoallv(&grid.fiber, parts, &part_bytes, Step::AllToAllFiber)
            .wait(rank),
    };
    let recv_bytes: usize = received.iter().map(|(p, _)| p.modeled_bytes(r)).sum();
    mem.free(sent_bytes);
    mem.alloc(recv_bytes);

    // All received pieces cover the same global columns: every fiber member
    // split the same local column set and sent us piece #k.
    let my_cols = received[0].1.clone();
    debug_assert!(received.iter().all(|(_, g)| g == &my_cols));

    // Merge-Fiber (Alg. 2 line 6) — the one place output is sorted. The
    // pieces crossed the fiber all-to-all, so re-check them against the
    // strategy's intermediate contract before merging.
    let pieces: Vec<CscMatrix<S::T>> = received.into_iter().map(|(p, _)| p).collect();
    if cfg!(debug_assertions) {
        for (k, piece) in pieces.iter().enumerate() {
            spgemm_sparse::debug_validate!(
                *piece,
                kernels.strategy().intermediate_sortedness(),
                "fiber all-to-all piece {k} (layer {})",
                grid.k
            );
        }
    }
    let (merged, _stats) = kernels.run_merge_fiber::<S>(rank, &pieces)?;
    mem.free(recv_bytes);
    mem.alloc(merged.modeled_bytes(r));
    spgemm_sparse::debug_validate!(
        merged,
        spgemm_sparse::Sortedness::Sorted,
        "Merge-Fiber output (layer {}, batch piece)",
        grid.k
    );

    Ok((
        CPiece {
            local: merged,
            row_offset: a.row_range(grid).start,
            global_cols: my_cols,
        },
        next_carry,
    ))
}

/// Convenience: full (single-batch) SUMMA3D over a distributed `B`
/// (Alg. 2 as published, without batching). Returns this rank's `C` piece.
/// Spins up a one-shot [`LocalKernels`] engine; callers that run many
/// batches should call [`summa3d_batch`] with a long-lived engine instead.
pub fn summa3d<S: Semiring>(
    rank: &mut Rank,
    grid: &Grid3D,
    a: &DistMatrix<S::T>,
    b: &DistMatrix<S::T>,
    strategy: KernelStrategy,
    r: usize,
    mem: &mut MemTracker,
) -> Result<CPiece<S::T>> {
    let mut kernels = LocalKernels::new(strategy);
    let mut plan = ExchangePlan::default();
    let a_shared = Arc::new(a.local.clone());
    let b_shared = Arc::new(b.local.clone());
    let gcols: Vec<u32> = b.col_range(grid).map(|c| c as u32).collect();
    // Single batch: ColSplit along the hierarchical layer sub-slices.
    let mut offsets = Vec::with_capacity(grid.l + 1);
    offsets.push(0);
    for s in 0..grid.l {
        offsets.push(block_range(gcols.len(), grid.l, s).end);
    }
    let (piece, carry) = summa3d_batch::<S>(
        rank,
        grid,
        a,
        &a_shared,
        &b_shared,
        &gcols,
        &offsets,
        &mut kernels,
        MergeSchedule::AfterAllStages,
        r,
        mem,
        &mut plan,
        OverlapMode::Blocking,
        None,
        None,
    )?;
    debug_assert!(carry.is_none());
    Ok(piece)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{gather_pieces, scatter, DistKind};
    use spgemm_simgrid::{run_ranks, Machine};
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::{PlusTimesF64, PlusTimesU64};
    use spgemm_sparse::spgemm::spgemm_spa;

    fn run_summa3d<S: Semiring>(
        p: usize,
        l: usize,
        a_global: CscMatrix<S::T>,
        b_global: CscMatrix<S::T>,
        strategy: KernelStrategy,
    ) -> CscMatrix<S::T>
    where
        S::T: Send + Sync,
    {
        let (m, n) = (a_global.nrows(), b_global.ncols());
        let results = run_ranks(p, Machine::knl(), move |rank| {
            let grid = Grid3D::new(rank, l);
            let a = scatter(
                rank,
                &grid,
                DistKind::AStyle,
                (rank.rank() == 0).then(|| Arc::new(a_global.clone())),
            );
            let b = scatter(
                rank,
                &grid,
                DistKind::BStyle,
                (rank.rank() == 0).then(|| Arc::new(b_global.clone())),
            );
            let mut mem = MemTracker::new();
            let piece = summa3d::<S>(rank, &grid, &a, &b, strategy, 24, &mut mem)
                .expect("summa3d failed");
            gather_pieces(rank, &grid.world, vec![piece], m, n)
        });
        results.into_iter().next().unwrap().expect("root gathers C")
    }

    #[test]
    fn summa3d_matches_serial_across_grids() {
        let a = er_random::<PlusTimesU64>(50, 50, 5, 21).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(50, 50, 5, 22).map(|_| 1u64);
        let (reference, _) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
        for (p, l) in [(4, 1), (4, 4), (8, 2), (16, 4), (16, 16), (12, 3)] {
            for strat in [KernelStrategy::New, KernelStrategy::Previous] {
                let c = run_summa3d::<PlusTimesU64>(p, l, a.clone(), b.clone(), strat);
                assert!(
                    c.eq_modulo_order(&reference),
                    "p={p} l={l} strategy={}",
                    strat.name()
                );
            }
        }
    }

    #[test]
    fn summa3d_rectangular_awkward() {
        let a = er_random::<PlusTimesU64>(41, 29, 3, 23).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(29, 35, 3, 24).map(|_| 1u64);
        let (reference, _) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
        let c = run_summa3d::<PlusTimesU64>(8, 2, a, b, KernelStrategy::New);
        assert!(c.eq_modulo_order(&reference));
    }

    #[test]
    fn summa3d_float() {
        let a = er_random::<PlusTimesF64>(36, 36, 4, 25);
        let b = er_random::<PlusTimesF64>(36, 36, 4, 26);
        let (reference, _) = spgemm_spa::<PlusTimesF64>(&a, &b).unwrap();
        let c = run_summa3d::<PlusTimesF64>(16, 4, a, b, KernelStrategy::New);
        assert!(c.approx_eq(&reference, 1e-12));
    }

    #[test]
    fn more_layers_reduce_abcast_time() {
        // The communication-avoiding effect (Fig. 5): with the same p,
        // increasing l shrinks the A-Bcast communicator, cutting its cost.
        let a = er_random::<PlusTimesF64>(64, 64, 8, 27);
        let b = er_random::<PlusTimesF64>(64, 64, 8, 28);
        let mut abcast = Vec::new();
        for l in [1usize, 4, 16] {
            let (a, b) = (a.clone(), b.clone());
            let breakdowns = run_ranks(16, Machine::knl(), move |rank| {
                let grid = Grid3D::new(rank, l);
                let a = scatter(
                    rank,
                    &grid,
                    DistKind::AStyle,
                    (rank.rank() == 0).then(|| Arc::new(a.clone())),
                );
                let b = scatter(
                    rank,
                    &grid,
                    DistKind::BStyle,
                    (rank.rank() == 0).then(|| Arc::new(b.clone())),
                );
                let mut mem = MemTracker::new();
                summa3d::<PlusTimesF64>(rank, &grid, &a, &b, KernelStrategy::New, 24, &mut mem)
                    .unwrap();
                *rank.clock().breakdown()
            });
            let max = spgemm_simgrid::max_breakdown(&breakdowns);
            abcast.push(max.secs_of(Step::ABcast));
        }
        assert!(
            abcast[0] > abcast[1] && abcast[1] > abcast[2],
            "A-Bcast should fall with l: {abcast:?}"
        );
    }
}
