//! The paper's 3D data distribution (Fig. 1) plus scatter/gather.
//!
//! On a `√(p/l) × √(p/l) × l` grid with per-layer side `pr`:
//!
//! * **A-style** (used by `A` and `C`): rows cut into `pr` blocks (one per
//!   process row `i`); columns cut hierarchically — first into `pr` blocks
//!   (one per process column `j`, "respecting the 2D process boundary"),
//!   then each block into `l` sub-slices (one per layer `k`). A local
//!   piece is `(m/pr) × (cols/(pr·l))` — tall and skinny for large `l`.
//! * **B-style**: the transpose arrangement — rows hierarchically into
//!   `pr·l` slices indexed `(i, k)`, columns into `pr` blocks by `j`.
//!   A local piece is `(rows/(pr·l)) × (n/pr)` — short and fat.
//!
//! The hierarchical inner-dimension partition is what aligns
//! `A`'s column slice `(s, k)` with `B`'s row slice `(s, k)` so that stage
//! `s` of SUMMA2D inside layer `k` multiplies conformant pieces.
//!
//! Scatter and gather exist for testing and harness convenience; their
//! traffic is charged to [`Step::Other`], which paper-style reports skip.

use spgemm_simgrid::{Comm, Grid3D, Rank, Step};
use spgemm_sparse::ops::{block_range, col_block, row_block};
use spgemm_sparse::{CscMatrix, Triples};
use std::ops::Range;
use std::sync::Arc;

/// Which of the paper's two local shapes a distributed matrix uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistKind {
    /// Rows blocked by `i`; columns sliced by `(j, k)`. Used by `A` and `C`.
    AStyle,
    /// Rows sliced by `(i, k)`; columns blocked by `j`. Used by `B`.
    BStyle,
}

/// Sub-slice `sub` of `subparts` within block `idx` of `parts` of `0..n`
/// (the hierarchical partition described in the module docs).
///
/// Inherits `block_range`'s degenerate-split guarantee: when
/// `n < parts·subparts` some slices come back empty (pinned at the end of
/// their outer block) but always inside `0..n`, and together the
/// `parts·subparts` slices still cover `0..n` disjointly in order.
pub fn sub_block(n: usize, parts: usize, idx: usize, subparts: usize, sub: usize) -> Range<usize> {
    let outer = block_range(n, parts, idx);
    let inner = block_range(outer.len(), subparts, sub);
    let r = outer.start + inner.start..outer.start + inner.end;
    debug_assert!(
        r.end <= outer.end,
        "sub_block({n}, {parts}, {idx}, {subparts}, {sub}) escapes its outer block {outer:?}"
    );
    r
}

/// A matrix distributed on a 3D grid, viewed from one rank.
#[derive(Debug, Clone)]
pub struct DistMatrix<T: Copy> {
    /// This rank's local piece (indices re-based to the local block).
    pub local: CscMatrix<T>,
    /// Distribution style.
    pub kind: DistKind,
    /// Global row count.
    pub grows: usize,
    /// Global column count.
    pub gcols: usize,
}

impl<T: Copy> DistMatrix<T> {
    /// Global row range of this rank's piece.
    pub fn row_range(&self, grid: &Grid3D) -> Range<usize> {
        match self.kind {
            DistKind::AStyle => block_range(self.grows, grid.pr, grid.i),
            DistKind::BStyle => sub_block(self.grows, grid.pr, grid.i, grid.l, grid.k),
        }
    }

    /// Global column range of this rank's piece.
    pub fn col_range(&self, grid: &Grid3D) -> Range<usize> {
        match self.kind {
            DistKind::AStyle => sub_block(self.gcols, grid.pr, grid.j, grid.l, grid.k),
            DistKind::BStyle => block_range(self.gcols, grid.pr, grid.j),
        }
    }

    /// Modeled bytes of the local piece.
    pub fn local_bytes(&self, r: usize) -> usize {
        self.local.modeled_bytes(r)
    }
}

/// Distribute a global matrix held by world rank 0 onto the grid.
///
/// Simulation note: the "scatter" broadcasts the global matrix as an `Arc`
/// (zero-copy in shared memory) and every rank slices out its own block;
/// modeled cost is charged to [`Step::Other`].
pub fn scatter<T: Copy + Send + Sync + 'static>(
    rank: &mut Rank,
    grid: &Grid3D,
    kind: DistKind,
    global: Option<Arc<CscMatrix<T>>>,
) -> DistMatrix<T> {
    let shared = rank.bcast(&grid.world, 0, global, 0, Step::Other);
    let (grows, gcols) = (shared.nrows(), shared.ncols());
    let mut dm = DistMatrix {
        local: CscMatrix::zero(0, 0),
        kind,
        grows,
        gcols,
    };
    let rr = dm.row_range(grid);
    let cr = dm.col_range(grid);
    dm.local = row_block(&col_block(&shared, cr), rr);
    dm
}

/// One rank's piece of a (possibly batched) output matrix `C`, carrying
/// explicit global coordinates so pieces can be reassembled and verified
/// regardless of batching order.
#[derive(Debug, Clone)]
pub struct CPiece<T: Copy> {
    /// Local rows `0..local.nrows()` map to global rows
    /// `row_offset..row_offset+local.nrows()`.
    pub local: CscMatrix<T>,
    /// Global row offset of local row 0.
    pub row_offset: usize,
    /// Global column id of each local column.
    pub global_cols: Vec<u32>,
}

impl<T: Copy> CPiece<T> {
    /// Convert to global-coordinate triples.
    pub fn to_global_triples(&self, grows: usize, gcols: usize) -> Triples<T> {
        let mut t = Triples::with_capacity(grows, gcols, self.local.nnz());
        for (r, c, v) in self.local.iter() {
            t.push(r + self.row_offset as u32, self.global_cols[c], v);
        }
        t
    }

    /// Modeled bytes.
    pub fn bytes(&self, r: usize) -> usize {
        self.local.modeled_bytes(r)
    }
}

/// Gather `C` pieces from every rank to world rank 0 and assemble the
/// global matrix (sorted columns). Non-roots get `None`.
///
/// Duplicate coordinates must not occur (pieces are disjoint by
/// construction); an assembly with duplicates indicates an algorithm bug
/// and is surfaced by the round-trip tests.
pub fn gather_pieces<T: Copy + Send + 'static>(
    rank: &mut Rank,
    world: &Comm,
    pieces: Vec<CPiece<T>>,
    grows: usize,
    gcols: usize,
) -> Option<CscMatrix<T>> {
    let gathered = rank.gather_to_root(world, 0, pieces, 0, Step::Other);
    gathered.map(|all| {
        let mut t = Triples::new(grows, gcols);
        for rank_pieces in all {
            for p in rank_pieces {
                for (r, c, v) in p.local.iter() {
                    t.push(r + p.row_offset as u32, p.global_cols[c], v);
                }
            }
        }
        t.to_csc()
    })
}

/// Distributed transpose: from an A-style distributed `M`, build the
/// B-style distribution of `Mᵀ` without ever materializing the global
/// transpose.
///
/// Under the paper's Fig. 1 layout this is communication-friendly by
/// construction: `M`'s A-style block on rank `(i, j, k)` is exactly the
/// transpose of `Mᵀ`'s B-style block on rank `(j, i, k)` (row blocks ↔
/// column blocks, `(j, k)` column slices ↔ `(i, k)` row slices). So the
/// whole operation is one pairwise exchange across the grid diagonal plus
/// a local transpose. `A·Aᵀ` pipelines (BELLA, Jaccard, hypergraph
/// matching) use this to set up `B = Aᵀ` in place.
pub fn transpose_to_bstyle<T: Copy + Send + 'static>(
    rank: &mut Rank,
    grid: &Grid3D,
    m: &DistMatrix<T>,
) -> DistMatrix<T> {
    assert_eq!(
        m.kind,
        DistKind::AStyle,
        "transpose_to_bstyle takes an A-style matrix"
    );
    let local_t = spgemm_sparse::ops::transpose(&m.local);
    let partner = grid.rank_of(grid.j, grid.i, grid.k);
    let me = rank.rank();
    let received = if partner == me {
        local_t
    } else {
        // Pairwise exchange with the diagonal partner (both sides send
        // first; the runtime's channels are unbounded, so no deadlock).
        let world = grid.world.clone();
        let nnz = local_t.nnz() as u64;
        rank.send(&world, partner, 0x7A_0001, (local_t, nnz));
        let (mat, recv_nnz) = rank.recv::<(CscMatrix<T>, u64)>(&world, partner, 0x7A_0001);
        // Model the exchange as one point-to-point message round.
        let machine = *rank.machine();
        let cost = machine.alpha + machine.beta * (recv_nnz as usize * 24) as f64;
        rank.clock_mut().advance(Step::Other, cost);
        mat
    };
    DistMatrix {
        local: received,
        kind: DistKind::BStyle,
        grows: m.gcols,
        gcols: m.grows,
    }
}

/// Reassemble a distributed A-style or B-style matrix on rank 0 (inverse
/// of [`scatter`]); used by round-trip tests.
pub fn gather_dist<T: Copy + Send + 'static>(
    rank: &mut Rank,
    grid: &Grid3D,
    dm: &DistMatrix<T>,
) -> Option<CscMatrix<T>> {
    let rr = dm.row_range(grid);
    let cr = dm.col_range(grid);
    let piece = CPiece {
        local: dm.local.clone(),
        row_offset: rr.start,
        global_cols: cr.map(|c| c as u32).collect(),
    };
    gather_pieces(rank, &grid.world, vec![piece], dm.grows, dm.gcols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_simgrid::{run_ranks, Machine};
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::PlusTimesF64;

    #[test]
    fn sub_block_partitions_hierarchically() {
        // n=10, 2 blocks (5+5), each into 2 subs.
        assert_eq!(sub_block(10, 2, 0, 2, 0), 0..3);
        assert_eq!(sub_block(10, 2, 0, 2, 1), 3..5);
        assert_eq!(sub_block(10, 2, 1, 2, 0), 5..8);
        assert_eq!(sub_block(10, 2, 1, 2, 1), 8..10);
    }

    #[test]
    fn sub_blocks_cover_disjointly() {
        for n in [17usize, 32, 100] {
            for parts in [2usize, 3] {
                for subparts in [1usize, 2, 4] {
                    let mut total = 0;
                    let mut prev_end = 0;
                    for idx in 0..parts {
                        for sub in 0..subparts {
                            let r = sub_block(n, parts, idx, subparts, sub);
                            assert_eq!(r.start, prev_end);
                            prev_end = r.end;
                            total += r.len();
                        }
                    }
                    assert_eq!(total, n);
                }
            }
        }
    }

    #[test]
    fn sub_block_degenerate_when_n_below_parts_times_subparts() {
        // Over-partitioned dimensions (n < parts·subparts) must yield
        // in-bounds, in-order, disjoint slices with empties interleaved —
        // the regime tiny matrices on big grids hit.
        for n in [0usize, 1, 2, 5, 7] {
            for parts in [2usize, 3, 4] {
                for subparts in [2usize, 4] {
                    if n >= parts * subparts {
                        continue;
                    }
                    let mut prev_end = 0;
                    let mut total = 0;
                    for idx in 0..parts {
                        for sub in 0..subparts {
                            let r = sub_block(n, parts, idx, subparts, sub);
                            assert!(
                                r.start == prev_end && r.end <= n,
                                "n={n} parts={parts} subparts={subparts} \
                                 idx={idx} sub={sub}: {r:?}"
                            );
                            prev_end = r.end;
                            total += r.len();
                        }
                    }
                    assert_eq!(total, n, "n={n} parts={parts} subparts={subparts}");
                }
            }
        }
    }

    #[test]
    fn scatter_gather_roundtrip_a_style() {
        let global = er_random::<PlusTimesF64>(37, 41, 3, 17);
        for (p, l) in [(4, 1), (8, 2), (16, 4), (16, 16)] {
            #[allow(clippy::redundant_clone)] // `global` is used again below
        let g2 = global.clone();
            let results = run_ranks(p, Machine::knl(), move |rank| {
                let grid = Grid3D::new(rank, l);
                let payload = (rank.rank() == 0).then(|| Arc::new(g2.clone()));
                let dm = scatter(rank, &grid, DistKind::AStyle, payload);
                gather_dist(rank, &grid, &dm)
            });
            let back = results[0].clone().expect("root gets the gather");
            assert!(
                global.eq_modulo_order(&back),
                "A-style roundtrip failed at p={p}, l={l}"
            );
        }
    }

    #[test]
    fn scatter_gather_roundtrip_b_style() {
        let global = er_random::<PlusTimesF64>(29, 33, 4, 18);
        for (p, l) in [(4, 1), (8, 2), (12, 3), (16, 4)] {
            #[allow(clippy::redundant_clone)] // `global` is used again below
        let g2 = global.clone();
            let results = run_ranks(p, Machine::knl(), move |rank| {
                let grid = Grid3D::new(rank, l);
                let payload = (rank.rank() == 0).then(|| Arc::new(g2.clone()));
                let dm = scatter(rank, &grid, DistKind::BStyle, payload);
                gather_dist(rank, &grid, &dm)
            });
            let back = results[0].clone().expect("root gets the gather");
            assert!(
                global.eq_modulo_order(&back),
                "B-style roundtrip failed at p={p}, l={l}"
            );
        }
    }

    #[test]
    fn distributed_transpose_matches_serial() {
        let global = er_random::<PlusTimesF64>(33, 47, 4, 77);
        for (p, l) in [(1usize, 1usize), (4, 1), (8, 2), (16, 4), (12, 3)] {
            #[allow(clippy::redundant_clone)] // `global` is used again below
        let g2 = global.clone();
            let results = run_ranks(p, Machine::knl(), move |rank| {
                let grid = Grid3D::new(rank, l);
                let payload = (rank.rank() == 0).then(|| Arc::new(g2.clone()));
                let a = scatter(rank, &grid, DistKind::AStyle, payload);
                let at = transpose_to_bstyle(rank, &grid, &a);
                assert_eq!(at.grows, 47);
                assert_eq!(at.gcols, 33);
                gather_dist(rank, &grid, &at)
            });
            let back = results[0].clone().expect("root gathers");
            let expect = spgemm_sparse::ops::transpose(&global);
            assert!(
                back.eq_modulo_order(&expect),
                "distributed transpose failed at p={p} l={l}"
            );
        }
    }

    #[test]
    fn distributed_transpose_feeds_aat_multiply() {
        use crate::batched::{batched_summa3d, BatchConfig};
        use crate::kernels::KernelStrategy;
        let global = er_random::<PlusTimesF64>(40, 60, 3, 78);
        let serial_at = spgemm_sparse::ops::transpose(&global);
        let (reference, _) =
            spgemm_sparse::spgemm::spgemm_spa::<PlusTimesF64>(&global, &serial_at).unwrap();
        #[allow(clippy::redundant_clone)] // `global` is used again below
        let g2 = global.clone();
        let results = run_ranks(16, Machine::knl(), move |rank| {
            let grid = Grid3D::new(rank, 4);
            let payload = (rank.rank() == 0).then(|| Arc::new(g2.clone()));
            let a = scatter(rank, &grid, DistKind::AStyle, payload);
            let at = transpose_to_bstyle(rank, &grid, &a);
            let cfg = BatchConfig {
                kernels: KernelStrategy::New,
                forced_batches: Some(3),
                ..Default::default()
            };
            let result =
                batched_summa3d::<PlusTimesF64>(rank, &grid, &a, &at, &cfg, |_r, out| {
                    Some(out.piece)
                })
                .unwrap();
            gather_pieces(rank, &grid.world, result.pieces, 40, 40)
        });
        let c = results[0].clone().expect("root gathers");
        assert!(c.approx_eq(&reference, 1e-10));
    }

    #[test]
    fn a_style_local_shape_is_tall_skinny() {
        let global = er_random::<PlusTimesF64>(64, 64, 2, 19);
        run_ranks(16, Machine::knl(), move |rank| {
            let grid = Grid3D::new(rank, 4); // pr=2, l=4
            let payload = (rank.rank() == 0).then(|| Arc::new(global.clone()));
            let dm = scatter(rank, &grid, DistKind::AStyle, payload);
            // (64/2) x (64/(2*4)) = 32 x 8
            assert_eq!(dm.local.nrows(), 32);
            assert_eq!(dm.local.ncols(), 8);
            // nrows = l * ncols, as the paper notes.
            assert_eq!(dm.local.nrows(), grid.l * dm.local.ncols());
        });
    }

    #[test]
    fn b_style_local_shape_is_short_fat() {
        let global = er_random::<PlusTimesF64>(64, 64, 2, 20);
        run_ranks(16, Machine::knl(), move |rank| {
            let grid = Grid3D::new(rank, 4);
            let payload = (rank.rank() == 0).then(|| Arc::new(global.clone()));
            let dm = scatter(rank, &grid, DistKind::BStyle, payload);
            assert_eq!(dm.local.nrows(), 8);
            assert_eq!(dm.local.ncols(), 32);
        });
    }

    #[test]
    fn inner_dimension_slices_align() {
        // A's column slice (s, k) must equal B's row slice (s, k) for all s,
        // k — the conformance requirement of stage s in layer k.
        let kk = 53; // awkward non-divisible inner dimension
        for (pr, l) in [(2usize, 2usize), (3, 1), (2, 4)] {
            for s in 0..pr {
                for k in 0..l {
                    let a_slice = sub_block(kk, pr, s, l, k);
                    let b_slice = sub_block(kk, pr, s, l, k);
                    assert_eq!(a_slice, b_slice);
                }
            }
        }
    }
}
