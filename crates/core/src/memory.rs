//! The paper's memory model and runtime footprint tracking.
//!
//! Storage model (Sec. IV-A): a nonzero costs `r` bytes — the paper uses
//! `r = 24` (two 8-byte indices plus an 8-byte value). The aggregate
//! budget `M` covers the inputs plus one batch's unmerged intermediate
//! output; Alg. 3 turns a budget into a batch count, and Eq. 2 gives the
//! analytic lower bound on that count.
//!
//! [`MemTracker`] follows the modeled footprint of one rank through a run
//! so tests can assert the central invariant: *with the symbolic batch
//! count, no rank ever exceeds its per-process budget.*

/// The paper's default bytes-per-nonzero (16 bytes of indices + 8 of value).
pub const R_BYTES_PER_NNZ: usize = 24;

/// An aggregate memory budget for the whole simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Total bytes across all processes (the paper's `M`).
    pub total_bytes: usize,
    /// Bytes per stored nonzero (the paper's `r`).
    pub r: usize,
}

impl MemoryBudget {
    /// Budget of `total_bytes` with the paper's default `r`.
    pub fn new(total_bytes: usize) -> Self {
        MemoryBudget {
            total_bytes,
            r: R_BYTES_PER_NNZ,
        }
    }

    /// Effectively unlimited budget (forces `b = 1` unless overridden).
    pub fn unlimited() -> Self {
        MemoryBudget::new(usize::MAX / 2)
    }

    /// Whether this is the [`MemoryBudget::unlimited`] sentinel — the case
    /// where the symbolic batch count is always 1, so an iterative session
    /// can skip re-running the symbolic sweep every iteration.
    pub fn is_unlimited(&self) -> bool {
        self.total_bytes >= usize::MAX / 2
    }

    /// Per-process budget `M/p`.
    pub fn per_process(&self, p: usize) -> usize {
        self.total_bytes / p
    }

    /// Eq. 2: the analytic lower bound on the number of batches, given the
    /// total memory needed for the (unmerged) output and the input sizes.
    /// Returns `None` when the inputs alone exhaust the budget.
    pub fn eq2_lower_bound(&self, mem_c_bytes: usize, nnz_a: usize, nnz_b: usize) -> Option<usize> {
        let inputs = self.r * (nnz_a + nnz_b);
        if self.total_bytes <= inputs {
            return None;
        }
        let denom = self.total_bytes - inputs;
        Some(mem_c_bytes.div_ceil(denom).max(1))
    }
}

/// Modeled memory footprint of one rank over time.
#[derive(Debug, Clone, Default)]
pub struct MemTracker {
    current: usize,
    peak: usize,
}

impl MemTracker {
    /// Fresh tracker at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an allocation of `bytes`.
    pub fn alloc(&mut self, bytes: usize) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
    }

    /// Record a release of `bytes` (saturating: double-frees in the model
    /// clamp to zero rather than panicking mid-simulation).
    pub fn free(&mut self, bytes: usize) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Current modeled bytes.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Peak modeled bytes seen so far.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_matches_paper_arithmetic() {
        // M = 100 units of r... work in bytes: r=24.
        let budget = MemoryBudget::new(24 * 1000);
        // mem(C) = 24 * 5000 bytes, inputs 300 nnz total.
        let b = budget.eq2_lower_bound(24 * 5000, 200, 100).unwrap();
        // denom = 24000 - 7200 = 16800; ceil(120000/16800) = 8.
        assert_eq!(b, 8);
    }

    #[test]
    fn eq2_is_one_when_memory_ample() {
        let budget = MemoryBudget::unlimited();
        assert_eq!(budget.eq2_lower_bound(1 << 40, 1000, 1000), Some(1));
    }

    #[test]
    fn eq2_none_when_inputs_too_big() {
        let budget = MemoryBudget::new(24 * 100);
        assert_eq!(budget.eq2_lower_bound(1, 80, 30), None);
    }

    #[test]
    fn tracker_tracks_peak() {
        let mut t = MemTracker::new();
        t.alloc(100);
        t.alloc(50);
        t.free(120);
        t.alloc(10);
        assert_eq!(t.current(), 40);
        assert_eq!(t.peak(), 150);
    }

    #[test]
    fn tracker_free_saturates() {
        let mut t = MemTracker::new();
        t.alloc(10);
        t.free(100);
        assert_eq!(t.current(), 0);
    }
}
