//! Candidate enumeration: the planner's search space.
//!
//! A candidate fixes everything the user would otherwise hand-pick —
//! algorithm family, layer count `l`, kernel generation, and overlap
//! mode. The batch count `b` is *not* part of the candidate: it is
//! derived per candidate from the memory budget (Alg. 3 / Eq. 2 applied
//! to the probe's estimates), mirroring how a real run derives it from
//! Symbolic3D.
//!
//! The family axis is block-structured: the SUMMA families cross with
//! every layer/kernel/overlap/exchange knob, while the 1.5D families
//! (`ColA15` / `InnerAbc15`) have none of those degrees of freedom —
//! their operands are stationary and their only free parameter is the
//! replication factor `c`, which is part of the family value itself.

use crate::exchange::ExchangeMode;
use crate::family15::AlgorithmFamily;
use crate::kernels::KernelStrategy;
use crate::model::validate_grid;
use crate::summa2d::OverlapMode;
use crate::Result;
use spgemm_simgrid::grid::valid_layer_counts;

/// One point of the planner's search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Algorithm family (SUMMA variants or a 1.5D member with its `c`).
    pub family: AlgorithmFamily,
    /// Grid layer count `l` (`l | p`, `p/l` a perfect square). Always 1
    /// for `Summa2d` and the 1.5D families.
    pub layers: usize,
    /// Local kernel generation (pinned to `New` for 1.5D: the dense-
    /// accumulator SpMM kernel has no generation knob).
    pub kernels: KernelStrategy,
    /// Blocking or pipelined broadcasts (1.5D shifts are blocking).
    pub overlap: OverlapMode,
    /// How the A operand moves: dense broadcast or sparsity-aware fetch
    /// (1.5D moves A by ring shifts; pinned to `DenseBcast`).
    pub exchange: ExchangeMode,
}

impl Candidate {
    /// Short human-readable label for reports.
    pub fn label(&self) -> String {
        match self.family {
            // Historical label format, kept stable for the batched-3D
            // default family.
            AlgorithmFamily::Summa3dBatched => format!(
                "l={} {} {} {}",
                self.layers,
                match self.kernels {
                    KernelStrategy::New => "new",
                    KernelStrategy::Previous => "prev",
                },
                match self.overlap {
                    OverlapMode::Blocking => "blocking",
                    OverlapMode::Overlapped => "overlapped",
                },
                self.exchange.name(),
            ),
            AlgorithmFamily::Summa2d => format!(
                "summa2d {} {} {}",
                match self.kernels {
                    KernelStrategy::New => "new",
                    KernelStrategy::Previous => "prev",
                },
                match self.overlap {
                    OverlapMode::Blocking => "blocking",
                    OverlapMode::Overlapped => "overlapped",
                },
                self.exchange.name(),
            ),
            f => f.label(),
        }
    }
}

/// Enumerate the family-structured search space.
///
/// For `Summa3dBatched`: `layers × kernels × overlaps × exchanges`. With
/// `layers = None` every feasible layer count of `p` is tried (all `l`
/// with `l | p` and `p/l` a perfect square — never empty, since `l = p`
/// always qualifies); explicitly requested layer counts are validated and
/// rejected with an error naming the offending `(p, l)`. For `Summa2d`:
/// the same kernel/overlap/exchange cross at pinned `l = 1`. For the 1.5D
/// families: one candidate each (everything but `c` is pinned), validated
/// against `p` with an error naming the offending `(p, c)`.
pub fn enumerate_candidates(
    p: usize,
    layers: Option<&[usize]>,
    kernels: &[KernelStrategy],
    overlaps: &[OverlapMode],
    exchanges: &[ExchangeMode],
    families: &[AlgorithmFamily],
) -> Result<Vec<Candidate>> {
    let mut out = Vec::new();
    let push = |c: Candidate, out: &mut Vec<Candidate>| {
        if !out.contains(&c) {
            out.push(c);
        }
    };
    for &fam in families {
        match fam {
            AlgorithmFamily::Summa3dBatched => {
                let ls: Vec<usize> = match layers {
                    Some(requested) => {
                        let mut ls = Vec::new();
                        for &l in requested {
                            validate_grid(p, l)?;
                            if !ls.contains(&l) {
                                ls.push(l);
                            }
                        }
                        ls
                    }
                    None => valid_layer_counts(p),
                };
                for &l in &ls {
                    for &k in kernels {
                        for &o in overlaps {
                            for &x in exchanges {
                                push(
                                    Candidate {
                                        family: fam,
                                        layers: l,
                                        kernels: k,
                                        overlap: o,
                                        exchange: x,
                                    },
                                    &mut out,
                                );
                            }
                        }
                    }
                }
            }
            AlgorithmFamily::Summa2d => {
                fam.validate(p)?;
                for &k in kernels {
                    for &o in overlaps {
                        for &x in exchanges {
                            push(
                                Candidate {
                                    family: fam,
                                    layers: 1,
                                    kernels: k,
                                    overlap: o,
                                    exchange: x,
                                },
                                &mut out,
                            );
                        }
                    }
                }
            }
            AlgorithmFamily::ColA15 { .. } | AlgorithmFamily::InnerAbc15 { .. } => {
                fam.validate(p)?;
                push(
                    Candidate {
                        family: fam,
                        layers: 1,
                        kernels: KernelStrategy::New,
                        overlap: OverlapMode::Blocking,
                        exchange: ExchangeMode::DenseBcast,
                    },
                    &mut out,
                );
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUMMA3D: &[AlgorithmFamily] = &[AlgorithmFamily::Summa3dBatched];

    #[test]
    fn enumerates_all_valid_layer_counts() {
        let cs = enumerate_candidates(
            64,
            None,
            &[KernelStrategy::New],
            &[OverlapMode::Blocking],
            &[ExchangeMode::DenseBcast],
            SUMMA3D,
        )
        .unwrap();
        let ls: Vec<usize> = cs.iter().map(|c| c.layers).collect();
        assert_eq!(ls, vec![1, 4, 16, 64]);
    }

    #[test]
    fn cross_product_over_kernels_overlap_and_exchange() {
        let cs = enumerate_candidates(
            16,
            Some(&[1, 4]),
            &[KernelStrategy::New, KernelStrategy::Previous],
            &[OverlapMode::Blocking, OverlapMode::Overlapped],
            &[ExchangeMode::DenseBcast, ExchangeMode::SparseFetch],
            SUMMA3D,
        )
        .unwrap();
        assert_eq!(cs.len(), 2 * 2 * 2 * 2);
    }

    #[test]
    fn bad_explicit_layer_count_names_pair() {
        let err = enumerate_candidates(
            16,
            Some(&[2]),
            &[KernelStrategy::New],
            &[OverlapMode::Blocking],
            &[ExchangeMode::DenseBcast],
            SUMMA3D,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("p=16") && msg.contains("l=2"), "{msg}");
    }

    #[test]
    fn duplicates_are_dropped() {
        let cs = enumerate_candidates(
            16,
            Some(&[4, 4]),
            &[KernelStrategy::New, KernelStrategy::New],
            &[OverlapMode::Blocking],
            &[ExchangeMode::DenseBcast],
            SUMMA3D,
        )
        .unwrap();
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn label_names_the_exchange_mode() {
        let c = Candidate {
            family: AlgorithmFamily::Summa3dBatched,
            layers: 4,
            kernels: KernelStrategy::New,
            overlap: OverlapMode::Overlapped,
            exchange: ExchangeMode::SparseFetch,
        };
        assert_eq!(c.label(), "l=4 new overlapped sparse");
        let c15 = Candidate {
            family: AlgorithmFamily::InnerAbc15 { c: 4 },
            ..c
        };
        assert_eq!(c15.label(), "innerabc(c=4)");
    }

    #[test]
    fn family_sweep_pins_the_15d_knobs() {
        let fams = AlgorithmFamily::sweep(16);
        let cs = enumerate_candidates(
            16,
            None,
            &[KernelStrategy::New, KernelStrategy::Previous],
            &[OverlapMode::Blocking, OverlapMode::Overlapped],
            &[ExchangeMode::DenseBcast],
            &fams,
        )
        .unwrap();
        // Every valid family appears; each 1.5D member exactly once.
        for fam in &fams {
            let n = cs.iter().filter(|c| c.family == *fam).count();
            if fam.is_15d() {
                assert_eq!(n, 1, "{}", fam.label());
            } else {
                assert!(n > 1, "{}", fam.label());
            }
        }
        for c in cs.iter().filter(|c| c.family.is_15d()) {
            assert_eq!(c.layers, 1);
            assert_eq!(c.kernels, KernelStrategy::New);
            assert_eq!(c.overlap, OverlapMode::Blocking);
        }
    }

    #[test]
    fn bad_explicit_repl_factor_names_pair() {
        let err = enumerate_candidates(
            6,
            None,
            &[KernelStrategy::New],
            &[OverlapMode::Blocking],
            &[ExchangeMode::DenseBcast],
            &[AlgorithmFamily::ColA15 { c: 4 }],
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("p=6") && msg.contains("c=4"), "{msg}");
    }
}
