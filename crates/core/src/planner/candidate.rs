//! Candidate enumeration: the planner's search space.
//!
//! A candidate fixes everything the user would otherwise hand-pick —
//! layer count `l`, kernel generation, and overlap mode. The batch count
//! `b` is *not* part of the candidate: it is derived per candidate from
//! the memory budget (Alg. 3 / Eq. 2 applied to the probe's estimates),
//! mirroring how a real run derives it from Symbolic3D.

use crate::exchange::ExchangeMode;
use crate::kernels::KernelStrategy;
use crate::model::validate_grid;
use crate::summa2d::OverlapMode;
use crate::Result;
use spgemm_simgrid::grid::valid_layer_counts;

/// One point of the planner's search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Grid layer count `l` (`l | p`, `p/l` a perfect square).
    pub layers: usize,
    /// Local kernel generation.
    pub kernels: KernelStrategy,
    /// Blocking or pipelined broadcasts.
    pub overlap: OverlapMode,
    /// How the A operand moves: dense broadcast or sparsity-aware fetch.
    pub exchange: ExchangeMode,
}

impl Candidate {
    /// Short human-readable label for reports.
    pub fn label(&self) -> String {
        format!(
            "l={} {} {} {}",
            self.layers,
            match self.kernels {
                KernelStrategy::New => "new",
                KernelStrategy::Previous => "prev",
            },
            match self.overlap {
                OverlapMode::Blocking => "blocking",
                OverlapMode::Overlapped => "overlapped",
            },
            self.exchange.name(),
        )
    }
}

/// Enumerate `layers × kernels × overlaps × exchanges`.
///
/// With `layers = None` every feasible layer count of `p` is tried (all
/// `l` with `l | p` and `p/l` a perfect square — never empty, since
/// `l = p` always qualifies). Explicitly requested layer counts are
/// validated and rejected with an error naming the offending `(p, l)`.
pub fn enumerate_candidates(
    p: usize,
    layers: Option<&[usize]>,
    kernels: &[KernelStrategy],
    overlaps: &[OverlapMode],
    exchanges: &[ExchangeMode],
) -> Result<Vec<Candidate>> {
    let ls: Vec<usize> = match layers {
        Some(requested) => {
            let mut ls = Vec::new();
            for &l in requested {
                validate_grid(p, l)?;
                if !ls.contains(&l) {
                    ls.push(l);
                }
            }
            ls
        }
        None => valid_layer_counts(p),
    };
    let mut out =
        Vec::with_capacity(ls.len() * kernels.len() * overlaps.len() * exchanges.len());
    for &l in &ls {
        for &k in kernels {
            for &o in overlaps {
                for &x in exchanges {
                    let c = Candidate {
                        layers: l,
                        kernels: k,
                        overlap: o,
                        exchange: x,
                    };
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_all_valid_layer_counts() {
        let cs = enumerate_candidates(
            64,
            None,
            &[KernelStrategy::New],
            &[OverlapMode::Blocking],
            &[ExchangeMode::DenseBcast],
        )
        .unwrap();
        let ls: Vec<usize> = cs.iter().map(|c| c.layers).collect();
        assert_eq!(ls, vec![1, 4, 16, 64]);
    }

    #[test]
    fn cross_product_over_kernels_overlap_and_exchange() {
        let cs = enumerate_candidates(
            16,
            Some(&[1, 4]),
            &[KernelStrategy::New, KernelStrategy::Previous],
            &[OverlapMode::Blocking, OverlapMode::Overlapped],
            &[ExchangeMode::DenseBcast, ExchangeMode::SparseFetch],
        )
        .unwrap();
        assert_eq!(cs.len(), 2 * 2 * 2 * 2);
    }

    #[test]
    fn bad_explicit_layer_count_names_pair() {
        let err = enumerate_candidates(
            16,
            Some(&[2]),
            &[KernelStrategy::New],
            &[OverlapMode::Blocking],
            &[ExchangeMode::DenseBcast],
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("p=16") && msg.contains("l=2"), "{msg}");
    }

    #[test]
    fn duplicates_are_dropped() {
        let cs = enumerate_candidates(
            16,
            Some(&[4, 4]),
            &[KernelStrategy::New, KernelStrategy::New],
            &[OverlapMode::Blocking],
            &[ExchangeMode::DenseBcast],
        )
        .unwrap();
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn label_names_the_exchange_mode() {
        let c = Candidate {
            layers: 4,
            kernels: KernelStrategy::New,
            overlap: OverlapMode::Overlapped,
            exchange: ExchangeMode::SparseFetch,
        };
        assert_eq!(c.label(), "l=4 new overlapped sparse");
    }
}
