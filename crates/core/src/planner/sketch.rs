//! Structural sketches: a stable 64-bit fingerprint of an operand pair's
//! *sparsity structure*, derived from the planner's sampled probe.
//!
//! The probe ([`mod@super::probe`]) is deliberately structure-only: it never
//! reads a single stored value, so two operand pairs with the same
//! dimensions and the same nonzero pattern probe identically no matter
//! what numbers they hold. A [`StructuralSketch`] canonically hashes that
//! probe — dimensions, exact input nonzero counts, the sampled column ids,
//! and the per-column occupancy profile `(fⱼ, dⱼ, nnz(B(:,j)))` — into one
//! `u64` plus human-readable summary fields.
//!
//! Equality of sketches is the plan cache's notion of "same shape": the
//! serve subsystem keys cached planner decisions on it, so a repeat job
//! whose operands sketch equal to an earlier pair skips probe + predict
//! entirely. Callers can use it the same way for any memoization keyed on
//! problem structure (the probe's seed and sampling bounds are part of the
//! hash, so sketches taken under different [`super::ProbeConfig`]s never
//! collide by construction).
//!
//! Stability contract: the hash is a deterministic FNV-1a over a canonical
//! little-endian byte stream — no `RandomState`, no pointer identity — so
//! it is reproducible across runs and processes. It is *not* promised
//! stable across versions of the probe itself: a change to the sampling
//! scheme legitimately changes what "structure" was observed.

use super::probe::{ProbeConfig, ProbeEstimate};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x100_0000_01B3;

/// Incremental FNV-1a over little-endian words (dependency-free, stable).
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write_u64(&mut self, x: u64) {
        for byte in x.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// A stable structural fingerprint of one probed operand pair.
///
/// Built by [`StructuralSketch::from_probe`]; compared by
/// [`StructuralSketch::hash`] (the summary fields ride along for reports
/// and cache introspection, and are themselves inputs to the hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StructuralSketch {
    /// Canonical 64-bit FNV-1a hash of the probe's structural content.
    pub hash: u64,
    /// `nrows(A)`.
    pub nrows_a: usize,
    /// Inner dimension `ncols(A)` = `nrows(B)`.
    pub inner: usize,
    /// `ncols(B)`.
    pub ncols_b: usize,
    /// Exact `nnz(A)`.
    pub nnz_a: u64,
    /// Exact `nnz(B)`.
    pub nnz_b: u64,
    /// Scaled flop estimate from the probe (summary only; already hashed
    /// via the per-column profile it is derived from).
    pub flops: u64,
    /// Scaled `nnz(C)` estimate from the probe.
    pub nnz_c: u64,
    /// How many columns the probe sampled (the profile's resolution).
    pub sampled_cols: usize,
}

impl StructuralSketch {
    /// Sketch a probe taken under `cfg`.
    ///
    /// The sampling parameters are hashed alongside the observations:
    /// probes of the same operands under different seeds or fractions see
    /// different column subsets and must not alias in a cache.
    pub fn from_probe(est: &ProbeEstimate, cfg: &ProbeConfig) -> Self {
        let mut h = Fnv::new();
        // Sampling scheme.
        h.write_u64(cfg.seed);
        h.write_u64(cfg.sample_fraction.to_bits());
        h.write_usize(cfg.min_cols);
        h.write_usize(cfg.max_cols);
        // Dimensions and exact input sizes.
        h.write_usize(est.nrows_a);
        h.write_usize(est.nrows_b);
        h.write_usize(est.total_cols);
        h.write_u64(est.nnz_a);
        h.write_u64(est.nnz_b);
        // Which columns were observed, and their occupancy profile. This
        // is the per-block structural signature: flops, distinct output
        // rows and B-column weight per sampled column.
        h.write_usize(est.cols.len());
        for &c in &est.cols {
            h.write_usize(c);
        }
        for (&f, (&d, &k)) in est
            .col_flops
            .iter()
            .zip(est.col_nnz.iter().zip(est.col_bnnz.iter()))
        {
            h.write_u64(f);
            h.write_u64(d);
            h.write_u64(k);
        }
        StructuralSketch {
            hash: h.0,
            nrows_a: est.nrows_a,
            inner: est.nrows_b,
            ncols_b: est.total_cols,
            nnz_a: est.nnz_a,
            nnz_b: est.nnz_b,
            flops: est.flops,
            nnz_c: est.nnz_c,
            sampled_cols: est.cols.len(),
        }
    }

    /// Short display form for reports: `a1b2c3d4 (MxKxN, nnzA/nnzB)`.
    pub fn label(&self) -> String {
        format!(
            "{:016x} ({}x{}x{}, {}/{})",
            self.hash, self.nrows_a, self.inner, self.ncols_b, self.nnz_a, self.nnz_b
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::probe::probe;
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::PlusTimesF64;

    fn sketch_of(a: &spgemm_sparse::CscMatrix<f64>, b: &spgemm_sparse::CscMatrix<f64>, cfg: &ProbeConfig) -> StructuralSketch {
        StructuralSketch::from_probe(&probe(a, b, cfg).unwrap(), cfg)
    }

    #[test]
    fn equal_structures_sketch_equal_and_deterministically() {
        let a = er_random::<PlusTimesF64>(120, 120, 6, 41);
        let b = er_random::<PlusTimesF64>(120, 120, 6, 42);
        let cfg = ProbeConfig::default();
        let s1 = sketch_of(&a, &b, &cfg);
        let s2 = sketch_of(&a, &b, &cfg);
        assert_eq!(s1, s2);
        assert_eq!(s1.hash, s2.hash);
        // A deep-copied pair (new allocations, same structure) sketches
        // identically: the hash covers content, never identity.
        #[allow(clippy::redundant_clone)]
        let (a2, b2) = (a.clone(), b.clone());
        assert_eq!(sketch_of(&a2, &b2, &cfg), s1);
    }

    #[test]
    fn value_changes_do_not_perturb_the_sketch() {
        let a = er_random::<PlusTimesF64>(100, 100, 5, 43);
        let b = er_random::<PlusTimesF64>(100, 100, 5, 44);
        let cfg = ProbeConfig::default();
        let s = sketch_of(&a, &b, &cfg);
        // Same pattern, completely different values.
        let a_scaled = a.map(|v| v * -1234.5 + 1.0);
        let b_scaled = b.map(|v| v.mul_add(0.0, 99.0));
        assert_eq!(sketch_of(&a_scaled, &b_scaled, &cfg), s);
    }

    #[test]
    fn structure_changes_change_the_hash() {
        let a = er_random::<PlusTimesF64>(100, 100, 5, 45);
        let b = er_random::<PlusTimesF64>(100, 100, 5, 46);
        let cfg = ProbeConfig::default();
        let s = sketch_of(&a, &b, &cfg);
        // Different sparsity pattern (new seed).
        let b_other = er_random::<PlusTimesF64>(100, 100, 5, 47);
        assert_ne!(sketch_of(&a, &b_other, &cfg).hash, s.hash);
        // Same nnz-per-column knobs, different dimensions.
        let a_wide = er_random::<PlusTimesF64>(100, 200, 5, 45);
        let b_tall = er_random::<PlusTimesF64>(200, 100, 5, 46);
        assert_ne!(sketch_of(&a_wide, &b_tall, &cfg).hash, s.hash);
        // Swapping the operand roles is a different problem.
        assert_ne!(sketch_of(&b, &a, &cfg).hash, s.hash);
    }

    #[test]
    fn probe_config_is_part_of_the_key() {
        let a = er_random::<PlusTimesF64>(600, 600, 4, 48);
        let b = er_random::<PlusTimesF64>(600, 600, 4, 49);
        let cfg = ProbeConfig::default();
        let other_seed = ProbeConfig {
            seed: cfg.seed ^ 1,
            ..cfg
        };
        assert_ne!(
            sketch_of(&a, &b, &cfg).hash,
            sketch_of(&a, &b, &other_seed).hash
        );
        // The exact probe sees every column: a different *kind* of key.
        assert_ne!(
            sketch_of(&a, &b, &cfg).hash,
            sketch_of(&a, &b, &ProbeConfig::exact()).hash
        );
    }

    #[test]
    fn summary_fields_mirror_the_probe() {
        let a = er_random::<PlusTimesF64>(80, 90, 4, 50);
        let b = er_random::<PlusTimesF64>(90, 70, 4, 51);
        let cfg = ProbeConfig::exact();
        let est = probe(&a, &b, &cfg).unwrap();
        let s = StructuralSketch::from_probe(&est, &cfg);
        assert_eq!(
            (s.nrows_a, s.inner, s.ncols_b),
            (80, 90, 70),
        );
        assert_eq!(s.nnz_a, a.nnz() as u64);
        assert_eq!(s.nnz_b, b.nnz() as u64);
        assert_eq!(s.flops, est.flops);
        assert_eq!(s.nnz_c, est.nnz_c);
        assert_eq!(s.sampled_cols, 70);
        assert!(s.label().contains("80x90x70"));
    }
}
