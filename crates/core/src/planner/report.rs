//! Ranked plan report: the argmin plus why every loser lost.

use super::predict::CandidatePrediction;

/// The planner's full output: every candidate, ranked.
///
/// Feasible candidates come first, ascending by predicted makespan;
/// infeasible candidates follow with the constraint that sank them.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Process count planned for.
    pub p: usize,
    /// Machine the predictions used.
    pub machine_name: String,
    /// Iteration count one-time costs were amortized over (1 = single
    /// shot; `total_s` values are per-iteration averages).
    pub iterations: usize,
    /// Did the probe sample (`true`) or see every column (`false`)?
    pub probe_sampled: bool,
    /// Columns the probe actually ran LocalSymbolic on.
    pub probe_cols: usize,
    /// `ncols(B)`.
    pub probe_total_cols: usize,
    /// Probe's (scaled) flop estimate.
    pub probe_flops: u64,
    /// Probe's (scaled) `nnz(C)` estimate.
    pub probe_nnz_c: u64,
    /// Every evaluated candidate, ranked.
    pub ranked: Vec<CandidatePrediction>,
}

impl PlanReport {
    /// The best feasible candidate, if any.
    pub fn winner(&self) -> Option<&CandidatePrediction> {
        self.ranked.iter().find(|c| c.feasible())
    }

    /// Render the ranked table plus a per-loser explanation.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan: p={} machine={} probe={}/{} cols ({}) flops~{} nnzC~{}\n",
            self.p,
            self.machine_name,
            self.probe_cols,
            self.probe_total_cols,
            if self.probe_sampled { "sampled" } else { "exact" },
            self.probe_flops,
            self.probe_nnz_c,
        ));
        if self.iterations > 1 {
            out.push_str(&format!(
                "iterations: {} — totals are per-iteration averages with one-time \
                 setup (skippable symbolic, fetch request indices) amortized\n",
                self.iterations
            ));
        }
        out.push_str(&format!(
            "{:<4} {:<22} {:>7} {:>11} {:>11} {:>11} {:>11} {:>11}  {}\n",
            "rank", "candidate", "batches", "total(s)", "latency(s)", "bandw(s)", "compute(s)",
            "peak(MB)", "constraint"
        ));
        for (rank, c) in self.ranked.iter().enumerate() {
            if c.feasible() {
                out.push_str(&format!(
                    "{:<4} {:<22} {:>7} {:>11.4e} {:>11.4e} {:>11.4e} {:>11.4e} {:>11.1} \
                     {}\n",
                    rank + 1,
                    c.candidate.label(),
                    c.batches,
                    c.total_s,
                    c.latency_s,
                    c.bandwidth_s,
                    c.compute_s,
                    c.peak_bytes_per_proc as f64 / (1024.0 * 1024.0),
                    c.constraint.label(),
                ));
            } else {
                out.push_str(&format!(
                    "{:<4} {:<22} {:>7} {:>11} {:>11} {:>11} {:>11} {:>11}  {}\n",
                    rank + 1,
                    c.candidate.label(),
                    "-",
                    "infeasible",
                    "-",
                    "-",
                    "-",
                    "-",
                    c.constraint.label(),
                ));
            }
        }
        if let Some(w) = self.winner() {
            out.push_str(&format!(
                "winner: {} with b={} (predicted {:.4e} s",
                w.candidate.label(),
                w.batches,
                w.total_s
            ));
            if w.hidden_s > 0.0 {
                out.push_str(&format!(", {:.4e} s hidden by overlap", w.hidden_s));
            }
            if self.iterations > 1 && w.one_time_s > 0.0 {
                out.push_str(&format!(
                    ", {:.4e} s one-time amortized over {} iterations",
                    w.one_time_s, self.iterations
                ));
            }
            out.push_str(")\n");
            for c in self.ranked.iter().filter(|c| !std::ptr::eq(*c, w)) {
                out.push_str(&format!("  {}\n", self.explain_loss(w, c)));
            }
        } else {
            out.push_str("winner: none — every candidate is infeasible under the budget\n");
        }
        out
    }

    /// One-line explanation of why `loser` ranked below `winner`.
    fn explain_loss(&self, winner: &CandidatePrediction, loser: &CandidatePrediction) -> String {
        let label = loser.candidate.label();
        if !loser.feasible() {
            return format!("{label}: infeasible — {}", loser.note);
        }
        let delta = loser.total_s - winner.total_s;
        // Attribute the loss to the component with the largest deficit.
        // The 1.5D steps get their own entries so a cross-family table
        // says *which leg* of the losing family's schedule lost, not just
        // "bandwidth".
        let parts = [
            ("latency", loser.latency_s - winner.latency_s),
            ("bandwidth", loser.bandwidth_s - winner.bandwidth_s),
            ("compute", loser.compute_s - winner.compute_s),
            (
                "less overlap hiding",
                winner.hidden_s - loser.hidden_s,
            ),
            (
                "symbolic",
                (loser.steps.symbolic_comm + loser.steps.symbolic_comp)
                    - (winner.steps.symbolic_comm + winner.steps.symbolic_comp),
            ),
            ("A-shift traffic", loser.steps.ashift - winner.steps.ashift),
            (
                "partial-C reduction",
                loser.steps.creduce - winner.steps.creduce,
            ),
        ];
        let (why, _) = parts
            .iter()
            .copied()
            .fold(("ties winner", f64::MIN), |acc, x| {
                if x.1 > acc.1 {
                    x
                } else {
                    acc
                }
            });
        if delta <= 0.0 {
            format!("{label}: ties the winner ({:.4e} s)", loser.total_s)
        } else {
            format!(
                "{label}: +{delta:.4e} s vs winner, mostly {why} (b={})",
                loser.batches
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::candidate::Candidate;
    use super::super::predict::{BindingConstraint, CandidatePrediction, PredictedSteps};
    use super::*;
    use crate::exchange::ExchangeMode;
    use crate::family15::AlgorithmFamily;
    use crate::kernels::KernelStrategy;
    use crate::summa2d::OverlapMode;

    fn pred(l: usize, total: f64, constraint: BindingConstraint) -> CandidatePrediction {
        CandidatePrediction {
            candidate: Candidate {
                family: AlgorithmFamily::Summa3dBatched,
                layers: l,
                kernels: KernelStrategy::New,
                overlap: OverlapMode::Blocking,
                exchange: ExchangeMode::DenseBcast,
            },
            batches: if constraint == BindingConstraint::InputsTooLarge {
                0
            } else {
                2
            },
            eq2_bound: 1,
            constraint,
            steps: PredictedSteps::default(),
            latency_s: total * 0.2,
            bandwidth_s: total * 0.3,
            compute_s: total * 0.5,
            hidden_s: 0.0,
            one_time_s: 0.0,
            total_s: if constraint == BindingConstraint::InputsTooLarge {
                f64::INFINITY
            } else {
                total
            },
            peak_bytes_per_proc: 1024,
            input_bytes_per_proc: 512,
            unmerged_bytes_per_proc: 1024,
            note: if constraint == BindingConstraint::InputsTooLarge {
                "inputs exceed budget".into()
            } else {
                String::new()
            },
        }
    }

    fn report(ranked: Vec<CandidatePrediction>) -> PlanReport {
        PlanReport {
            p: 16,
            machine_name: "knl".into(),
            iterations: 1,
            probe_sampled: false,
            probe_cols: 100,
            probe_total_cols: 100,
            probe_flops: 1000,
            probe_nnz_c: 500,
            ranked,
        }
    }

    #[test]
    fn winner_is_first_feasible() {
        let r = report(vec![
            pred(1, f64::INFINITY, BindingConstraint::InputsTooLarge),
            pred(4, 2.0, BindingConstraint::MemoryBudget),
            pred(16, 3.0, BindingConstraint::SingleBatch),
        ]);
        assert_eq!(r.winner().unwrap().candidate.layers, 4);
    }

    #[test]
    fn no_feasible_candidates_means_no_winner() {
        let r = report(vec![pred(1, f64::INFINITY, BindingConstraint::InputsTooLarge)]);
        assert!(r.winner().is_none());
        assert!(r.to_table().contains("every candidate is infeasible"));
    }

    #[test]
    fn table_mentions_every_candidate_and_explains_losers() {
        let r = report(vec![
            pred(4, 2.0, BindingConstraint::MemoryBudget),
            pred(16, 3.0, BindingConstraint::SingleBatch),
            pred(1, f64::INFINITY, BindingConstraint::InputsTooLarge),
        ]);
        let t = r.to_table();
        assert!(t.contains("l=4 new blocking"));
        assert!(t.contains("l=16 new blocking"));
        assert!(t.contains("winner: l=4"));
        assert!(t.contains("+1.0000e0 s vs winner"), "{t}");
        assert!(t.contains("infeasible — inputs exceed budget"), "{t}");
    }
}
