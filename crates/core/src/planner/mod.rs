//! Cost-model-driven autotuner: pick layers, batches, overlap, and
//! kernels before the run.
//!
//! The paper answers "given `p` processes and memory budget `M`, how many
//! layers `l` and batches `b`?" only by exhaustive sweeps (Figs. 4–5).
//! This module answers it analytically, in four moves:
//!
//! 1. **Enumerate** ([`candidate`]) every feasible grid — all `l` with
//!    `l | p` and `p/l` a perfect square — crossed with kernel generation
//!    and overlap mode.
//! 2. **Probe** ([`probe()`]) the operands once with a cheap sampled
//!    structure-only symbolic pass (no full Symbolic3D): per-column flop
//!    and output-row counts, scaled estimates of `flops` and `nnz(C)`.
//! 3. **Predict** ([`predict`]) each candidate's makespan with the same
//!    α–β and work-unit formulas the simulator charges, deriving the
//!    Alg. 3 / Eq. 2 batch count from the budget and subtracting the
//!    broadcast time hideable under multiply in overlapped mode.
//! 4. **Report** ([`report`]) the ranked candidates: the argmin, each
//!    candidate's latency/bandwidth/compute split, the constraint that
//!    bound it, and why losers lost.
//!
//! [`calibrate()`] closes the predict → measure → refit loop: it fits
//! effective α/β/flop-rate constants from one measured run's step
//! breakdowns and persists them as a machine-profile JSON later plans
//! can load.

pub mod calibrate;
pub mod candidate;
pub mod predict;
pub mod probe;
pub mod report;
pub mod sketch;

pub use calibrate::{calibrate, CalibrationInput, MachineProfile};
pub use candidate::{enumerate_candidates, Candidate};
pub use predict::{
    family15_block_nnz, grid_shape, occ, BindingConstraint, CandidatePrediction, GridShape,
    PredictedSteps,
};
pub use probe::{probe, ProbeConfig, ProbeEstimate};
pub use report::PlanReport;
pub use sketch::StructuralSketch;

use crate::exchange::ExchangeMode;
use crate::family15::AlgorithmFamily;
use crate::harness::RunConfig;
use crate::kernels::KernelStrategy;
use crate::memory::MemoryBudget;
use crate::model::validate_grid;
use crate::summa2d::OverlapMode;
use crate::{CoreError, Result};
use spgemm_simgrid::Machine;
use spgemm_sparse::CscMatrix;

/// Everything the planner needs besides the operands.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Machine cost model predictions are made against.
    pub machine: Machine,
    /// Aggregate memory budget (drives the batch count per candidate).
    pub budget: MemoryBudget,
    /// Probe sampling parameters.
    pub probe: ProbeConfig,
    /// Restrict the layer search (`None` = every valid `l` for `p`).
    pub layers: Option<Vec<usize>>,
    /// Kernel generations to consider.
    pub kernels: Vec<KernelStrategy>,
    /// Overlap modes to consider.
    pub overlaps: Vec<OverlapMode>,
    /// Exchange modes to consider for the A operand.
    pub exchanges: Vec<ExchangeMode>,
    /// Algorithm families to consider. Defaults to `Summa3dBatched` only
    /// (the historical search space); `AlgorithmFamily::sweep(p)` opens
    /// the full cross-family comparison including the 1.5D members.
    pub families: Vec<AlgorithmFamily>,
    /// Charge the Symbolic3D pass a real run would perform (disable when
    /// comparing against sweeps that force the batch count).
    pub include_symbolic: bool,
    /// Number of times the application repeats the multiplication over
    /// resident operands (an iterative `IterSession` run). One-time costs
    /// — the skippable symbolic sweep and SparseFetch request-index setup
    /// — are amortized over this count, so 1 iteration and 20 can pick
    /// different winners. Default 1 (single-shot).
    pub iterations: usize,
}

impl PlannerConfig {
    /// Full search space over kernels and overlap modes.
    pub fn new(machine: Machine, budget: MemoryBudget) -> Self {
        PlannerConfig {
            machine,
            budget,
            probe: ProbeConfig::default(),
            layers: None,
            kernels: vec![KernelStrategy::New, KernelStrategy::Previous],
            overlaps: vec![OverlapMode::Blocking, OverlapMode::Overlapped],
            exchanges: vec![ExchangeMode::DenseBcast, ExchangeMode::SparseFetch],
            families: vec![AlgorithmFamily::Summa3dBatched],
            include_symbolic: true,
            iterations: 1,
        }
    }

    /// Plan *for a run configuration*: the kernel and overlap choices are
    /// taken from `cfg` (only the grid is searched), so `Auto` layer
    /// resolution never second-guesses explicit user choices.
    pub fn for_run(cfg: &RunConfig) -> Self {
        PlannerConfig {
            machine: cfg.machine,
            budget: cfg.budget,
            probe: ProbeConfig::default(),
            layers: None,
            kernels: vec![cfg.kernels],
            overlaps: vec![cfg.overlap],
            exchanges: vec![cfg.exchange],
            families: vec![cfg.algorithm],
            include_symbolic: cfg.forced_batches.is_none(),
            iterations: 1,
        }
    }
}

/// Plan `A · B` on `p` processes: probe once, predict every candidate,
/// rank them.
///
/// Structure-only and value-type-agnostic (like the probe): `A` and `B`
/// may hold different scalar types.
pub fn plan<T: Copy, U: Copy>(
    p: usize,
    a: &CscMatrix<T>,
    b: &CscMatrix<U>,
    cfg: &PlannerConfig,
) -> Result<PlanReport> {
    if a.ncols() != b.nrows() {
        return Err(CoreError::Config(format!(
            "plan: inner dimensions differ: A is {}x{}, B is {}x{}",
            a.nrows(),
            a.ncols(),
            b.nrows(),
            b.ncols()
        )));
    }
    let est = probe(a, b, &cfg.probe)?;
    plan_with_probe(p, a, b, cfg, &est)
}

/// [`plan`] with the probe already taken: predict and rank every candidate
/// against `est` instead of re-probing the operands.
///
/// This is the entry point for callers that memoize probes — the serve
/// subsystem's operand store probes each registered pair once and replans
/// repeat jobs from the cached [`ProbeEstimate`]. The operands are still
/// required for the exact per-layer placement scan ([`grid_shape`]), which
/// depends on `p` and the candidate layer counts, not just structure
/// statistics.
pub fn plan_with_probe<T: Copy, U: Copy>(
    p: usize,
    a: &CscMatrix<T>,
    b: &CscMatrix<U>,
    cfg: &PlannerConfig,
    est: &ProbeEstimate,
) -> Result<PlanReport> {
    let candidates = enumerate_candidates(
        p,
        cfg.layers.as_deref(),
        &cfg.kernels,
        &cfg.overlaps,
        &cfg.exchanges,
        &cfg.families,
    )?;

    // One exact placement scan per distinct layer count (SUMMA families;
    // 1.5D candidates have no square grid and take the block profile
    // below instead).
    let mut shapes: Vec<(usize, GridShape)> = Vec::new();
    for c in &candidates {
        if !c.family.is_15d() && !shapes.iter().any(|(l, _)| *l == c.layers) {
            let side = validate_grid(p, c.layers)?;
            shapes.push((c.layers, grid_shape(a, b, side, c.layers)));
        }
    }
    // One per-inner-block A profile per distinct 1.5D block count t = p/c.
    let mut profiles: Vec<(usize, Vec<u64>)> = Vec::new();
    for c in &candidates {
        if c.family.is_15d() {
            let t = p / c.family.repl_factor();
            if !profiles.iter().any(|(pt, _)| *pt == t) {
                profiles.push((t, family15_block_nnz(a, t)));
            }
        }
    }
    let mut ranked: Vec<CandidatePrediction> = candidates
        .iter()
        .map(|&c| {
            if c.family.is_15d() {
                let t = p / c.family.repl_factor();
                let blocks = &profiles.iter().find(|(pt, _)| *pt == t).unwrap().1;
                predict::predict_family15(p, blocks, est, &cfg.machine, &cfg.budget, c)
            } else {
                let shape = &shapes.iter().find(|(l, _)| *l == c.layers).unwrap().1;
                predict::predict_candidate(
                    p,
                    shape,
                    est,
                    &cfg.machine,
                    &cfg.budget,
                    cfg.include_symbolic,
                    cfg.iterations,
                    c,
                )
            }
        })
        .collect();
    // Feasible first, ascending predicted makespan; infeasible last.
    ranked.sort_by(|x, y| {
        y.feasible()
            .cmp(&x.feasible())
            .then(x.total_s.partial_cmp(&y.total_s).unwrap_or(std::cmp::Ordering::Equal))
    });
    Ok(PlanReport {
        p,
        machine_name: cfg.machine.name.to_string(),
        iterations: cfg.iterations,
        probe_sampled: !est.is_exact(),
        probe_cols: est.cols.len(),
        probe_total_cols: est.total_cols,
        probe_flops: est.flops,
        probe_nnz_c: est.nnz_c,
        ranked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::PlusTimesF64;

    fn operands() -> (CscMatrix<f64>, CscMatrix<f64>) {
        (
            er_random::<PlusTimesF64>(128, 128, 8, 31),
            er_random::<PlusTimesF64>(128, 128, 8, 32),
        )
    }

    #[test]
    fn plan_ranks_all_candidates_and_picks_a_winner() {
        let (a, b) = operands();
        let cfg = PlannerConfig::new(Machine::knl_mini(), MemoryBudget::unlimited());
        let rep = plan(16, &a, &b, &cfg).unwrap();
        // layers {1, 4, 16} × 2 kernels × 2 overlaps × 2 exchanges
        assert_eq!(rep.ranked.len(), 24);
        let w = rep.winner().expect("unlimited budget must be feasible");
        assert!(w.total_s.is_finite() && w.total_s > 0.0);
        assert!(w.batches >= 1);
        // Ranked ascending among feasible candidates.
        for pair in rep.ranked.windows(2) {
            if pair[0].feasible() && pair[1].feasible() {
                assert!(pair[0].total_s <= pair[1].total_s);
            }
        }
        assert!(rep.to_table().contains("winner:"));
    }

    #[test]
    fn tight_budget_forces_batches_or_infeasibility() {
        let (a, b) = operands();
        let inputs = (a.nnz() + b.nnz()) * 24;
        let mut cfg = PlannerConfig::new(Machine::knl_mini(), MemoryBudget::new(inputs * 3));
        cfg.probe = ProbeConfig::exact();
        let rep = plan(16, &a, &b, &cfg).unwrap();
        let w = rep.winner().expect("3x-inputs budget should be plannable");
        assert!(
            w.batches > 1,
            "tight budget should force batching, got b={}",
            w.batches
        );
        assert!(w.peak_bytes_per_proc <= cfg.budget.per_process(16));
    }

    #[test]
    fn impossible_budget_yields_no_winner() {
        let (a, b) = operands();
        let cfg = PlannerConfig::new(Machine::knl_mini(), MemoryBudget::new(1024));
        let rep = plan(16, &a, &b, &cfg).unwrap();
        assert!(rep.winner().is_none());
        assert!(rep.ranked.iter().all(|c| !c.feasible()));
    }

    #[test]
    fn for_run_restricts_kernels_and_overlap() {
        let mut rc = RunConfig::new(16, 1);
        rc.kernels = KernelStrategy::Previous;
        rc.overlap = OverlapMode::Overlapped;
        let cfg = PlannerConfig::for_run(&rc);
        assert_eq!(cfg.kernels, vec![KernelStrategy::Previous]);
        assert_eq!(cfg.overlaps, vec![OverlapMode::Overlapped]);
        assert_eq!(cfg.exchanges, vec![ExchangeMode::DenseBcast]);
        let (a, b) = operands();
        let rep = plan(16, &a, &b, &cfg).unwrap();
        assert_eq!(rep.ranked.len(), 3); // layers {1, 4, 16} only
    }

    #[test]
    fn sparse_fetch_candidates_swap_abcast_for_fetch() {
        let (a, b) = operands();
        let cfg = PlannerConfig::new(Machine::knl_mini(), MemoryBudget::unlimited());
        let rep = plan(16, &a, &b, &cfg).unwrap();
        for c in &rep.ranked {
            let pr_gt_1 = 16 / c.candidate.layers > 1;
            match c.candidate.exchange {
                ExchangeMode::DenseBcast => {
                    assert_eq!(c.steps.fetch, 0.0, "{}", c.candidate.label());
                    assert!(c.steps.abcast > 0.0, "{}", c.candidate.label());
                }
                ExchangeMode::SparseFetch => {
                    assert_eq!(c.steps.abcast, 0.0, "{}", c.candidate.label());
                    assert_eq!(c.steps.fetch > 0.0, pr_gt_1, "{}", c.candidate.label());
                }
            }
        }
    }

    #[test]
    fn planner_picks_exchange_mode_per_workload() {
        // Pure-bandwidth machine so the comparison isolates moved bytes.
        let mut machine = Machine::knl_mini();
        machine.alpha = 0.0;
        let mut cfg = PlannerConfig::new(machine, MemoryBudget::unlimited());
        cfg.kernels = vec![KernelStrategy::New];
        cfg.overlaps = vec![OverlapMode::Blocking];

        let matched = |rep: &PlanReport, x: ExchangeMode| -> CandidatePrediction {
            rep.ranked
                .iter()
                .find(|c| c.candidate.exchange == x)
                .unwrap()
                .clone()
        };

        // Hypersparse operands at l=4 (pr=2): tiny needed sets and a
        // single requester per stage, so fetch ships far less than a
        // broadcast of the full A block.
        cfg.layers = Some(vec![4]);
        let a = er_random::<PlusTimesF64>(4096, 4096, 1, 7);
        let b = er_random::<PlusTimesF64>(4096, 4096, 1, 8);
        let rep = plan(16, &a, &b, &cfg).unwrap();
        let (dense, sparse) = (
            matched(&rep, ExchangeMode::DenseBcast),
            matched(&rep, ExchangeMode::SparseFetch),
        );
        assert!(
            sparse.steps.fetch < dense.steps.abcast,
            "hypersparse: fetch {} !< abcast {}",
            sparse.steps.fetch,
            dense.steps.abcast
        );

        // Denser operands at l=1 (pr=4): near-full needed sets and three
        // serial requesters per stage, so the owner-serialised replies
        // cost more than one broadcast.
        cfg.layers = Some(vec![1]);
        let (a, b) = operands();
        let rep = plan(16, &a, &b, &cfg).unwrap();
        let (dense, sparse) = (
            matched(&rep, ExchangeMode::DenseBcast),
            matched(&rep, ExchangeMode::SparseFetch),
        );
        assert!(
            dense.steps.abcast < sparse.steps.fetch,
            "dense-ish: abcast {} !< fetch {}",
            dense.steps.abcast,
            sparse.steps.fetch
        );
    }

    #[test]
    fn iteration_amortization_is_exact_and_monotone() {
        let (a, b) = operands();
        let base = PlannerConfig::new(Machine::knl_mini(), MemoryBudget::unlimited());
        let rep1 = plan(16, &a, &b, &base).unwrap();
        let mut cfg20 = base;
        cfg20.iterations = 20;
        let rep20 = plan(16, &a, &b, &cfg20).unwrap();
        for c1 in rep1.ranked.iter().filter(|c| c.feasible()) {
            let c20 = rep20
                .ranked
                .iter()
                .find(|c| c.candidate == c1.candidate)
                .unwrap();
            // Per-iteration identity: warm + one_time/N.
            let expect = (c1.total_s - c1.one_time_s) + c1.one_time_s / 20.0;
            assert!(
                (c20.total_s - expect).abs() <= 1e-12 * c1.total_s,
                "{}: got {} want {}",
                c1.candidate.label(),
                c20.total_s,
                expect
            );
            // More iterations never make a candidate look slower.
            assert!(c20.total_s <= c1.total_s + 1e-15);
            // Unlimited budget ⇒ b = 1 ⇒ the symbolic sweep is one-time.
            assert!(c1.one_time_s > 0.0, "{}", c1.candidate.label());
        }
        assert!(rep20.to_table().contains("per-iteration averages"));
    }

    #[test]
    fn iteration_count_flips_the_exchange_winner() {
        // Workload tuned so SparseFetch's one-time request-index setup
        // sinks it on a single shot, while its smaller warm-iteration
        // replies win once that setup is amortized: hypersparse-ish A
        // (small replies) against a denser B (large needed sets, so large
        // request indices). Pure-bandwidth machine isolates moved bytes;
        // everything but the exchange mode is pinned, so the flip can only
        // come from amortization.
        let mut machine = Machine::knl_mini();
        machine.alpha = 0.0;
        let mut cfg = PlannerConfig::new(machine, MemoryBudget::unlimited());
        cfg.kernels = vec![KernelStrategy::New];
        cfg.overlaps = vec![OverlapMode::Blocking];
        cfg.layers = Some(vec![4]);
        cfg.probe = ProbeConfig::exact();
        let a = er_random::<PlusTimesF64>(4096, 4096, 4, 91);
        let b = er_random::<PlusTimesF64>(4096, 4096, 8, 92);

        let winner_at = |iters: usize| -> ExchangeMode {
            let mut c = cfg.clone();
            c.iterations = iters;
            plan(16, &a, &b, &c).unwrap().winner().unwrap().candidate.exchange
        };
        assert_eq!(winner_at(1), ExchangeMode::DenseBcast);
        assert_eq!(winner_at(20), ExchangeMode::SparseFetch);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = er_random::<PlusTimesF64>(10, 12, 2, 1);
        let b = er_random::<PlusTimesF64>(10, 10, 2, 2);
        let cfg = PlannerConfig::new(Machine::knl_mini(), MemoryBudget::unlimited());
        assert!(plan(4, &a, &b, &cfg).is_err());
    }
}
