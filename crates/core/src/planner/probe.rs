//! Sampled symbolic probe: cheap structure-only estimates of `flops`,
//! `nnz(C)` and the per-column product profile.
//!
//! The planner cannot afford a full Symbolic3D per candidate grid — that
//! is a whole distributed structure pass with the communication pattern of
//! an unbatched SUMMA sweep. Instead it runs serial `LocalSymbolic`
//! ([`symbolic_col_counts`]) once, on a deterministic seeded sample of
//! `B`'s columns, and scales the per-column results up. Column-wise
//! sampling is unbiased for the totals (`flops`, `nnz(C)` are sums of
//! independent per-column quantities) and preserves exactly the per-column
//! profile `(fⱼ, dⱼ, nnz(B(:,j)))` the occupancy-based predictor needs.

use crate::{CoreError, Result};
use spgemm_sparse::ops::extract_cols;
use spgemm_sparse::spgemm::symbolic_col_counts;
use spgemm_sparse::CscMatrix;

/// How the probe samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeConfig {
    /// Fraction of `B`'s columns to probe (clamped to `(0, 1]`).
    pub sample_fraction: f64,
    /// Never sample fewer columns than this (unless `B` has fewer).
    pub min_cols: usize,
    /// Never sample more columns than this (caps probe cost on huge `B`).
    pub max_cols: usize,
    /// Seed of the deterministic column sampler.
    pub seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            sample_fraction: 0.25,
            min_cols: 64,
            max_cols: 4096,
            seed: 0x05EE_DCA7,
        }
    }
}

impl ProbeConfig {
    /// Exact probe: every column, no sampling error (`scale = 1`).
    pub fn exact() -> Self {
        ProbeConfig {
            sample_fraction: 1.0,
            max_cols: usize::MAX,
            ..ProbeConfig::default()
        }
    }
}

/// What the probe learned, per sampled column and in (scaled) total.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeEstimate {
    /// `nrows(A)` — with [`ProbeEstimate::nrows_b`] (= `ncols(A)`) and
    /// [`ProbeEstimate::total_cols`] (= `ncols(B)`) this pins all four
    /// operand dimensions, so a [`super::sketch::StructuralSketch`] derived
    /// from the probe distinguishes shape, not just sparsity.
    pub nrows_a: usize,
    /// `nrows(B)` = `ncols(A)` — the inner dimension.
    pub nrows_b: usize,
    /// `ncols(B)` — the batching upper bound.
    pub total_cols: usize,
    /// Global column ids probed, ascending.
    pub cols: Vec<usize>,
    /// `total_cols / cols.len()`: multiply sampled sums by this.
    pub scale: f64,
    /// Global `nnz(A)` / `nnz(B)` (exact, not sampled).
    pub nnz_a: u64,
    /// Global `nnz(B)`.
    pub nnz_b: u64,
    /// Estimated total multiplication count (scaled).
    pub flops: u64,
    /// Estimated `nnz(C)` (scaled).
    pub nnz_c: u64,
    /// Per sampled column: flops `fⱼ = Σ_{i∈B(:,j)} nnz(A(:,i))`.
    pub col_flops: Vec<u64>,
    /// Per sampled column: distinct output rows `dⱼ = nnz(C(:,j))`.
    pub col_nnz: Vec<u64>,
    /// Per sampled column: `nnz(B(:,j))` (the kernel's stream count).
    pub col_bnnz: Vec<u64>,
    /// Modeled work units the probe itself spent (for speedup reporting
    /// against a full symbolic pass).
    pub work_units: f64,
}

impl ProbeEstimate {
    /// Was every column probed (estimates are exact)?
    pub fn is_exact(&self) -> bool {
        self.cols.len() == self.total_cols
    }
}

/// xorshift64* — deterministic, dependency-free sampling stream.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Floyd's algorithm: `k` distinct values from `0..n`, seeded, sorted.
fn sample_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    debug_assert!(k <= n);
    // splitmix64 scramble: adjacent seeds diverge, and the xorshift state
    // never starts at 0.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    state ^= state >> 31;
    if state == 0 {
        state = 0x9E37_79B9_7F4A_7C15;
    }
    let mut chosen = std::collections::HashSet::with_capacity(k);
    for j in (n - k)..n {
        let t = (xorshift(&mut state) % (j as u64 + 1)) as usize;
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut cols: Vec<usize> = chosen.into_iter().collect();
    cols.sort_unstable();
    cols
}

/// Run the sampled symbolic probe on global operands.
///
/// Structure-only and value-type-agnostic: `A` and `B` may hold different
/// scalar types, exactly like [`symbolic_col_counts`].
pub fn probe<T: Copy, U: Copy>(
    a: &CscMatrix<T>,
    b: &CscMatrix<U>,
    cfg: &ProbeConfig,
) -> Result<ProbeEstimate> {
    if a.ncols() != b.nrows() {
        return Err(CoreError::Config(format!(
            "probe: inner dimensions differ: A is {}x{}, B is {}x{}",
            a.nrows(),
            a.ncols(),
            b.nrows(),
            b.ncols()
        )));
    }
    let n = b.ncols();
    if n == 0 {
        return Ok(ProbeEstimate {
            nrows_a: a.nrows(),
            nrows_b: b.nrows(),
            total_cols: 0,
            cols: Vec::new(),
            scale: 1.0,
            nnz_a: a.nnz() as u64,
            nnz_b: 0,
            flops: 0,
            nnz_c: 0,
            col_flops: Vec::new(),
            col_nnz: Vec::new(),
            col_bnnz: Vec::new(),
            work_units: 0.0,
        });
    }
    let frac = cfg.sample_fraction.clamp(f64::MIN_POSITIVE, 1.0);
    let target = ((n as f64 * frac).ceil() as usize)
        .max(cfg.min_cols)
        .min(cfg.max_cols)
        .clamp(1, n);
    let cols = if target == n {
        (0..n).collect()
    } else {
        sample_indices(n, target, cfg.seed)
    };
    let b_sample = extract_cols(b, &cols);
    let (counts, stats) = symbolic_col_counts(a, &b_sample).map_err(CoreError::Sparse)?;

    let mut col_flops = Vec::with_capacity(cols.len());
    let mut col_bnnz = Vec::with_capacity(cols.len());
    for (local_j, &j) in cols.iter().enumerate() {
        let (b_rows, _) = b_sample.col(local_j);
        let f: u64 = b_rows.iter().map(|&i| a.col_nnz(i as usize) as u64).sum();
        col_flops.push(f);
        col_bnnz.push(b.col_nnz(j) as u64);
    }
    let scale = n as f64 / cols.len() as f64;
    let sum_f: u64 = col_flops.iter().sum();
    let sum_d: u64 = counts.iter().sum();
    Ok(ProbeEstimate {
        nrows_a: a.nrows(),
        nrows_b: b.nrows(),
        total_cols: n,
        cols,
        scale,
        nnz_a: a.nnz() as u64,
        nnz_b: b.nnz() as u64,
        flops: (sum_f as f64 * scale).round() as u64,
        nnz_c: (sum_d as f64 * scale).round() as u64,
        col_flops,
        col_nnz: counts,
        col_bnnz,
        work_units: stats.work_units,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::PlusTimesF64;
    use spgemm_sparse::spgemm::symbolic_nnz;

    #[test]
    fn exact_probe_matches_serial_symbolic() {
        let a = er_random::<PlusTimesF64>(80, 80, 6, 11);
        let b = er_random::<PlusTimesF64>(80, 80, 6, 12);
        let est = probe(&a, &b, &ProbeConfig::exact()).unwrap();
        let (nnz_c, stats) = symbolic_nnz(&a, &b).unwrap();
        assert!(est.is_exact());
        assert_eq!(est.flops, stats.flops);
        assert_eq!(est.nnz_c, nnz_c);
        assert_eq!(est.nnz_a, a.nnz() as u64);
    }

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let cols = sample_indices(1000, 100, 42);
        assert_eq!(cols, sample_indices(1000, 100, 42));
        assert_ne!(cols, sample_indices(1000, 100, 43));
        assert_eq!(cols.len(), 100);
        assert!(cols.windows(2).all(|w| w[0] < w[1]));
        assert!(cols.iter().all(|&c| c < 1000));
    }

    #[test]
    fn sampled_probe_estimates_within_tolerance() {
        let a = er_random::<PlusTimesF64>(400, 400, 8, 21);
        let b = er_random::<PlusTimesF64>(400, 400, 8, 22);
        let cfg = ProbeConfig {
            sample_fraction: 0.25,
            min_cols: 64,
            max_cols: 4096,
            seed: 7,
        };
        let est = probe(&a, &b, &cfg).unwrap();
        let (nnz_c, stats) = symbolic_nnz(&a, &b).unwrap();
        assert!(est.cols.len() < 400);
        let fl = est.flops as f64 / stats.flops as f64;
        let nc = est.nnz_c as f64 / nnz_c as f64;
        assert!((0.7..1.3).contains(&fl), "flops estimate off: {fl}");
        assert!((0.7..1.3).contains(&nc), "nnz(C) estimate off: {nc}");
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = er_random::<PlusTimesF64>(10, 12, 2, 1);
        let b = er_random::<PlusTimesF64>(10, 10, 2, 2);
        assert!(matches!(probe(&a, &b, &ProbeConfig::default()), Err(CoreError::Config(_))));
    }
}
