//! Calibration: fit effective machine constants from one measured run.
//!
//! The simulator charges collectives exact α–β costs, so a run's per-step
//! seconds/bytes/ops satisfy, per rank and exactly,
//!
//! ```text
//! secs(ABcast) = α · msgs(ABcast) · ⌈lg √(p/l)⌉ + β · bytes(ABcast)
//! secs(BBcast) = α · msgs(BBcast) · ⌈lg √(p/l)⌉ + β · bytes(BBcast)
//! ```
//!
//! (`msgs` counts one per collective op; broadcasts pay `⌈lg q⌉` latency
//! rounds per op). Averaging each equation over ranks and solving the
//! resulting 2×2 system recovers α and β; the flop rate follows from the
//! measured computation seconds and the modeled work units. The fitted
//! constants persist as a flat machine-profile JSON (hand-rolled — the
//! workspace takes no serialization dependency) that later `plan`
//! invocations load.

use crate::{CoreError, Result};
use spgemm_simgrid::{Machine, Step, StepBreakdown};

/// Fitted machine constants, serializable as a machine-profile JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Where the constants came from (base machine name, workload note).
    pub source: String,
    /// Fitted per-message latency (seconds).
    pub alpha: f64,
    /// Fitted per-byte transfer time (seconds).
    pub beta: f64,
    /// Fitted seconds per modeled kernel work unit (single thread).
    pub secs_per_work_unit: f64,
    /// Threads per process (copied from the base machine).
    pub threads_per_proc: usize,
    /// Parallel efficiency of threading (copied from the base machine).
    pub thread_efficiency: f64,
}

impl MachineProfile {
    /// A profile that reproduces `m` unchanged.
    pub fn from_machine(m: &Machine) -> Self {
        MachineProfile {
            source: m.name.to_string(),
            alpha: m.alpha,
            beta: m.beta,
            secs_per_work_unit: m.secs_per_work_unit,
            threads_per_proc: m.threads_per_proc,
            thread_efficiency: m.thread_efficiency,
        }
    }

    /// Materialize as a [`Machine`] usable anywhere a preset is.
    pub fn to_machine(&self) -> Machine {
        Machine {
            name: "calibrated",
            alpha: self.alpha,
            beta: self.beta,
            secs_per_work_unit: self.secs_per_work_unit,
            threads_per_proc: self.threads_per_proc,
            thread_efficiency: self.thread_efficiency,
        }
    }

    /// Serialize as flat JSON.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"source\": \"{}\",\n  \"alpha\": {:e},\n  \"beta\": {:e},\n  \
             \"secs_per_work_unit\": {:e},\n  \"threads_per_proc\": {},\n  \
             \"thread_efficiency\": {}\n}}\n",
            self.source.replace('\\', "\\\\").replace('"', "\\\""),
            self.alpha,
            self.beta,
            self.secs_per_work_unit,
            self.threads_per_proc,
            self.thread_efficiency,
        )
    }

    /// Parse the flat JSON written by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self> {
        fn field<'a>(text: &'a str, key: &str) -> Result<&'a str> {
            let pat = format!("\"{key}\"");
            let at = text
                .find(&pat)
                .ok_or_else(|| CoreError::Config(format!("machine profile: missing {key}")))?;
            let rest = &text[at + pat.len()..];
            let colon = rest
                .find(':')
                .ok_or_else(|| CoreError::Config(format!("machine profile: malformed {key}")))?;
            let rest = rest[colon + 1..].trim_start();
            let end = rest
                .find([',', '\n', '}'])
                .unwrap_or(rest.len());
            Ok(rest[..end].trim())
        }
        fn num(text: &str, key: &str) -> Result<f64> {
            field(text, key)?.parse::<f64>().map_err(|_| {
                CoreError::Config(format!("machine profile: {key} is not a number"))
            })
        }
        let source_raw = field(text, "source")?;
        let source_raw = source_raw.strip_prefix('"').unwrap_or(source_raw);
        let source_raw = source_raw.strip_suffix('"').unwrap_or(source_raw);
        let source = source_raw.replace("\\\"", "\"").replace("\\\\", "\\");
        let profile = MachineProfile {
            source,
            alpha: num(text, "alpha")?,
            beta: num(text, "beta")?,
            secs_per_work_unit: num(text, "secs_per_work_unit")?,
            threads_per_proc: num(text, "threads_per_proc")? as usize,
            thread_efficiency: num(text, "thread_efficiency")?,
        };
        if !(profile.alpha.is_finite()
            && profile.beta.is_finite()
            && profile.secs_per_work_unit.is_finite())
            || profile.alpha < 0.0
            || profile.beta < 0.0
            || profile.secs_per_work_unit <= 0.0
            || profile.threads_per_proc == 0
        {
            return Err(CoreError::Config(
                "machine profile: constants out of range".into(),
            ));
        }
        Ok(profile)
    }

    /// Write the profile JSON to `path`.
    pub fn save(&self, path: &std::path::Path) -> Result<Self> {
        std::fs::write(path, self.to_json()).map_err(|e| {
            CoreError::Config(format!("cannot write machine profile {}: {e}", path.display()))
        })?;
        Ok(self.clone())
    }

    /// Load a profile JSON from `path`.
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            CoreError::Config(format!("cannot read machine profile {}: {e}", path.display()))
        })?;
        Self::from_json(&text)
    }
}

/// What one measured run exposes to the fitter.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationInput<'a> {
    /// Process count of the run.
    pub p: usize,
    /// Layer count of the run.
    pub layers: usize,
    /// Per-rank step breakdowns from `RunOutput::per_rank`.
    pub per_rank: &'a [StepBreakdown],
    /// Total modeled kernel work units across ranks, when known (e.g. the
    /// planner's prediction for the executed configuration). `None` keeps
    /// the base machine's flop rate.
    pub total_work_units: Option<f64>,
    /// Thread count of a Native-backend run, when the breakdowns carry
    /// **measured** kernel seconds. The fitted profile then describes the
    /// real machine: `threads_per_proc` is set to this count (efficiency
    /// 1.0 — the measured seconds already include any threading loss).
    /// `None` for modeled (Simgrid) runs: the base machine's threading
    /// parameters are kept and divided back out of the compute seconds.
    pub threads: Option<usize>,
}

fn mean(per_rank: &[StepBreakdown], f: impl Fn(&StepBreakdown) -> f64) -> f64 {
    if per_rank.is_empty() {
        return 0.0;
    }
    per_rank.iter().map(f).sum::<f64>() / per_rank.len() as f64
}

/// Fit α, β and the flop rate from one run's step breakdowns.
///
/// Falls back to the base machine's constants whenever the run carries no
/// signal for a term (e.g. a 2D grid with `√(p/l) = 1` never broadcasts,
/// and a degenerate system — both broadcast rows proportional — pins α to
/// the base value and fits β alone).
pub fn calibrate(base: &Machine, input: &CalibrationInput) -> MachineProfile {
    let mut profile = MachineProfile::from_machine(base);
    profile.source = format!("calibrated from p={} l={} on {}", input.p, input.layers, base.name);

    let pr = (input.p / input.layers.max(1)).max(1);
    let pr = (pr as f64).sqrt().round() as usize;
    let lg_pr = if pr > 1 { (pr as f64).log2().ceil() } else { 0.0 };

    // Per-step mean rows: secs = α·rounds + β·bytes.
    let row = |s: Step| {
        let secs = mean(input.per_rank, |b| b.secs_of(s));
        let rounds = mean(input.per_rank, |b| b.msgs[s as usize] as f64) * lg_pr;
        let bytes = mean(input.per_rank, |b| b.bytes_of(s) as f64);
        (secs, rounds, bytes)
    };
    let rows = [row(Step::ABcast), row(Step::BBcast)];
    let rows: Vec<_> = rows
        .iter()
        .copied()
        .filter(|&(secs, rounds, bytes)| secs > 0.0 && (rounds > 0.0 || bytes > 0.0))
        .collect();

    match rows.as_slice() {
        [(s1, r1, b1), (s2, r2, b2)] => {
            let det = r1 * b2 - r2 * b1;
            let scale = (r1 * b2).abs().max((r2 * b1).abs()).max(1e-300);
            if det.abs() > 1e-9 * scale {
                let alpha = (s1 * b2 - s2 * b1) / det;
                let beta = (r1 * s2 - r2 * s1) / det;
                if alpha >= 0.0 && beta >= 0.0 {
                    profile.alpha = alpha;
                    profile.beta = beta;
                } else {
                    fit_beta_only(&mut profile, base, &rows);
                }
            } else {
                fit_beta_only(&mut profile, base, &rows);
            }
        }
        [_] => fit_beta_only(&mut profile, base, &rows),
        _ => {} // no broadcast signal at all: keep base α, β
    }

    if let Some(threads) = input.threads {
        // Measured run: the profile's threading parameters describe the
        // real execution, not the base model's assumption.
        profile.threads_per_proc = threads.max(1);
        profile.thread_efficiency = 1.0;
    }
    if let Some(work) = input.total_work_units {
        let comp = mean(input.per_rank, |b| b.comp_total());
        let per_proc_work = work / input.p.max(1) as f64;
        if comp > 0.0 && per_proc_work > 0.0 {
            // comp = spu · (work/p) / thread_scale  =>  solve for spu. For
            // measured runs thread_scale is the real thread count, so the
            // fitted spu is the per-thread rate the planner divides back.
            profile.secs_per_work_unit =
                comp * profile.to_machine().thread_scale() / per_proc_work;
        }
    }
    profile
}

/// Keep the base α; least-squares β over the usable rows.
fn fit_beta_only(profile: &mut MachineProfile, base: &Machine, rows: &[(f64, f64, f64)]) {
    let mut num = 0.0;
    let mut den = 0.0;
    for &(secs, rounds, bytes) in rows {
        let resid = secs - base.alpha * rounds;
        num += resid * bytes;
        den += bytes * bytes;
    }
    if den > 0.0 {
        let beta = num / den;
        if beta >= 0.0 {
            profile.beta = beta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_breakdown(
        alpha: f64,
        beta: f64,
        lg_pr: f64,
        ops_ab: u64,
        bytes_ab: u64,
        ops_bb: u64,
        bytes_bb: u64,
    ) -> StepBreakdown {
        let mut b = StepBreakdown::default();
        b.secs[Step::ABcast as usize] = alpha * ops_ab as f64 * lg_pr + beta * bytes_ab as f64;
        b.bytes[Step::ABcast as usize] = bytes_ab;
        b.msgs[Step::ABcast as usize] = ops_ab;
        b.secs[Step::BBcast as usize] = alpha * ops_bb as f64 * lg_pr + beta * bytes_bb as f64;
        b.bytes[Step::BBcast as usize] = bytes_bb;
        b.msgs[Step::BBcast as usize] = ops_bb;
        b
    }

    #[test]
    fn recovers_alpha_beta_from_exact_rows() {
        let base = Machine::knl();
        let (alpha, beta) = (3.0e-6, 2.0e-9);
        // p=16, l=1 -> pr=4, lg_pr=2. Distinct byte/round ratios per step.
        let per_rank: Vec<StepBreakdown> = (0..4)
            .map(|_| synthetic_breakdown(alpha, beta, 2.0, 8, 1_000_000, 8, 50_000))
            .collect();
        let fit = calibrate(
            &base,
            &CalibrationInput { p: 16, layers: 1, per_rank: &per_rank, total_work_units: None, threads: None },
        );
        assert!((fit.alpha / alpha - 1.0).abs() < 1e-9, "alpha={}", fit.alpha);
        assert!((fit.beta / beta - 1.0).abs() < 1e-9, "beta={}", fit.beta);
        assert_eq!(fit.secs_per_work_unit, base.secs_per_work_unit);
    }

    #[test]
    fn degenerate_rows_keep_base_alpha_and_fit_beta() {
        let base = Machine::knl();
        // Proportional rows: bytes/rounds identical ratio -> singular system.
        let per_rank =
            vec![synthetic_breakdown(base.alpha, 4.0e-9, 2.0, 8, 400_000, 8, 400_000)];
        let fit = calibrate(
            &base,
            &CalibrationInput { p: 16, layers: 1, per_rank: &per_rank, total_work_units: None, threads: None },
        );
        assert_eq!(fit.alpha, base.alpha);
        assert!((fit.beta / 4.0e-9 - 1.0).abs() < 1e-9, "beta={}", fit.beta);
    }

    #[test]
    fn no_broadcast_signal_keeps_base_constants() {
        let base = Machine::haswell();
        // pr = 1 (l = p): broadcasts never happen.
        let per_rank = vec![StepBreakdown::default(); 4];
        let fit = calibrate(
            &base,
            &CalibrationInput { p: 4, layers: 4, per_rank: &per_rank, total_work_units: None, threads: None },
        );
        assert_eq!(fit.alpha, base.alpha);
        assert_eq!(fit.beta, base.beta);
    }

    #[test]
    fn flop_rate_fits_from_work_units() {
        let base = Machine::knl();
        let mut b = StepBreakdown::default();
        b.secs[Step::LocalMultiply as usize] = 2.0;
        let per_rank = vec![b; 2];
        let total_work = 1.0e9;
        let fit = calibrate(
            &base,
            &CalibrationInput {
                p: 2,
                layers: 2,
                per_rank: &per_rank,
                total_work_units: Some(total_work),
                threads: None,
            },
        );
        // comp = spu * (work/p) / thread_scale  =>  spu = comp*scale/(work/p)
        let expect = 2.0 * base.thread_scale() / (total_work / 2.0);
        assert!((fit.secs_per_work_unit / expect - 1.0).abs() < 1e-12);
    }

    #[test]
    fn native_run_fits_real_thread_count() {
        let base = Machine::knl();
        let mut b = StepBreakdown::default();
        b.secs[Step::LocalMultiply as usize] = 0.5;
        let per_rank = vec![b; 4];
        let total_work = 8.0e8;
        let fit = calibrate(
            &base,
            &CalibrationInput {
                p: 4,
                layers: 1,
                per_rank: &per_rank,
                total_work_units: Some(total_work),
                threads: Some(8),
            },
        );
        // The fitted profile describes the measured execution: 8 real
        // threads at unit efficiency, spu solved against that scale.
        assert_eq!(fit.threads_per_proc, 8);
        assert_eq!(fit.thread_efficiency, 1.0);
        let expect = 0.5 * 8.0 / (total_work / 4.0);
        assert!((fit.secs_per_work_unit / expect - 1.0).abs() < 1e-12);
        // Round-tripping through a Machine keeps predictions consistent.
        let m = fit.to_machine();
        assert!((m.compute_secs(total_work / 4.0) / 0.5 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trips() {
        let p = MachineProfile {
            source: "calibrated from p=64 l=4 on \"knl\"".into(),
            alpha: 2.5e-6,
            beta: 7.5e-10,
            secs_per_work_unit: 3.25e-9,
            threads_per_proc: 16,
            thread_efficiency: 0.85,
        };
        let back = MachineProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
        let m = back.to_machine();
        assert_eq!(m.name, "calibrated");
        assert_eq!(m.alpha, 2.5e-6);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(MachineProfile::from_json("{}").is_err());
        assert!(MachineProfile::from_json("{\"source\": \"x\", \"alpha\": \"nan?\"}").is_err());
        let negative = "{\"source\": \"x\", \"alpha\": -1, \"beta\": 1e-9, \
                        \"secs_per_work_unit\": 1e-9, \"threads_per_proc\": 4, \
                        \"thread_efficiency\": 0.9}";
        assert!(MachineProfile::from_json(negative).is_err());
    }
}
