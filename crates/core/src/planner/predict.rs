//! Overlap-aware makespan prediction for one candidate configuration.
//!
//! The predictor deliberately mirrors the *simulator's* accounting, not the
//! paper's closed-form Table II upper bounds: it calls the same
//! [`Machine`] α–β formulas the collectives charge and the same kernel
//! work-unit constants the local kernels report, so a predicted makespan is
//! directly comparable to `RunOutput::max.total()` and the planner's regret
//! against an exhaustive sweep stays small.
//!
//! Three models compose:
//!
//! * **Placement** — exact per-process input nonzero counts under the
//!   Fig. 1 distribution for each candidate `l` ([`GridShape`]), computed
//!   by bucketing every nonzero with [`block_index`] (the inverse of
//!   `block_range`).
//! * **Compression** — a balls-into-bins occupancy estimate
//!   `occ(balls, bins) = bins·(1 − e^(−balls/bins))` turns each probed
//!   column's flop count `fⱼ` and distinct-row count `dⱼ` into expected
//!   unmerged / layer-merged intermediate sizes at any `(√(p/l), l)` split.
//! * **Overlap** — under [`OverlapMode::Overlapped`], every stage's
//!   broadcast except the first hides under the previous stage's multiply;
//!   the hideable time `（b·√(p/l) − 1)·min(c_stage, m_stage)` is
//!   subtracted from the blocking makespan, mirroring the simulator's
//!   pipelined double-buffering.

use super::candidate::Candidate;
use super::probe::ProbeEstimate;
use crate::exchange::ExchangeMode;
use crate::family15::AlgorithmFamily;
use crate::kernels::KernelStrategy;
use crate::memory::{MemoryBudget, R_BYTES_PER_NNZ};
use crate::summa2d::OverlapMode;
use spgemm_simgrid::Machine;
use spgemm_sparse::spgemm::{
    C_DRAIN, C_HASH_FLOP, C_HEAP_FLOP, C_MERGE_HASH, C_MERGE_HEAP, C_SORT, C_SPMM_FLOP,
};
use spgemm_sparse::CscMatrix;

/// Streams-per-column threshold of the hybrid kernel's heap path (kept in
/// sync with `spgemm-sparse`'s `HEAP_STREAMS_MAX`).
const HEAP_STREAMS_MAX: f64 = 4.0;

fn lg(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// Index of the `block_range(n, parts, ·)` block containing `x` — the
/// inverse of `spgemm_sparse::ops::block_range`.
pub fn block_index(n: usize, parts: usize, x: usize) -> usize {
    debug_assert!(x < n);
    let base = n / parts;
    let rem = n % parts;
    if base == 0 {
        return x; // n < parts: element x lives in block x.
    }
    let fat = rem * (base + 1);
    if x < fat {
        x / (base + 1)
    } else {
        rem + (x - fat) / base
    }
}

/// Expected occupancy of `bins` bins after throwing `balls` balls:
/// `bins·(1 − e^(−balls/bins))`. Estimates how many *distinct* output rows
/// a set of products compresses to when a column's `dⱼ` candidate rows are
/// split across grid cells.
pub fn occ(balls: f64, bins: f64) -> f64 {
    if balls <= 0.0 || bins <= 0.0 {
        return 0.0;
    }
    bins * (1.0 - (-balls / bins).exp())
}

/// Exact per-process placement statistics of the inputs for one `(p, l)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridShape {
    /// Layer count.
    pub l: usize,
    /// Layer side `√(p/l)`.
    pub pr: usize,
    /// Inner dimension (`ncols(A)` = `nrows(B)`) — the fetch model's bin
    /// count when estimating how many A columns a receiver's needed set
    /// covers.
    pub inner: usize,
    /// Max over processes of local `nnz(A)` (A-style placement).
    pub max_nnz_a_proc: u64,
    /// Max over processes of local `nnz(B)` (B-style placement).
    pub max_nnz_b_proc: u64,
    /// Critical-path nonzeros of one full A-Broadcast sweep, max over
    /// layers: `max_k Σ_s max_i nnz(A_{i,s,k})`. The SUMMA stages are
    /// bulk-synchronous (the column broadcasts re-sync every row each
    /// stage), so the sweep's bandwidth time is the *sum of per-stage
    /// maxima* — on skewed inputs this exceeds any single rank's own
    /// receive volume, and the surplus is what the simulator books as
    /// `Wait`.
    pub sweep_nnz_a: u64,
    /// Critical-path nonzeros of a full B-Broadcast sweep, max over
    /// layers: `max_k Σ_s max_j nnz(B_{s,j,k})`.
    pub sweep_nnz_b: u64,
}

/// Bucket every nonzero of `a` (A-style) and `b` (B-style) onto the
/// `(√(p/l))² × l` grid and take the maxima the predictor needs.
pub fn grid_shape<T: Copy, U: Copy>(
    a: &CscMatrix<T>,
    b: &CscMatrix<U>,
    pr: usize,
    l: usize,
) -> GridShape {
    let mut a_proc = vec![0u64; pr * pr * l];
    let mut b_proc = vec![0u64; pr * pr * l];
    let cell = |i: usize, j: usize, k: usize| (k * pr + i) * pr + j;

    // A-style: rows blocked by i over pr; columns sliced by (j, k).
    let (am, an) = (a.nrows(), a.ncols());
    for j in 0..an {
        let jb = block_index(an, pr, j);
        let outer = spgemm_sparse::ops::block_range(an, pr, jb);
        let k = if outer.is_empty() {
            0
        } else {
            block_index(outer.len(), l, j - outer.start)
        };
        let (rows, _) = a.col(j);
        for &r in rows {
            let i = block_index(am, pr, r as usize);
            a_proc[cell(i, jb, k)] += 1;
        }
    }
    // B-style: rows sliced by (i, k) over pr·l; columns blocked by j.
    let (bm, bn) = (b.nrows(), b.ncols());
    for j in 0..bn {
        let jb = block_index(bn, pr, j);
        let (rows, _) = b.col(j);
        for &r in rows {
            let r = r as usize;
            let ib = block_index(bm, pr, r);
            let outer = spgemm_sparse::ops::block_range(bm, pr, ib);
            let k = if outer.is_empty() {
                0
            } else {
                block_index(outer.len(), l, r - outer.start)
            };
            b_proc[cell(ib, jb, k)] += 1;
        }
    }

    let mut sweep_a = 0u64;
    let mut sweep_b = 0u64;
    for k in 0..l {
        // Stage s roots: A at column s of each row; B at row s of each
        // column. Each stage costs the max over its concurrent roots.
        let mut a_sum = 0u64;
        let mut b_sum = 0u64;
        for s in 0..pr {
            a_sum += (0..pr).map(|i| a_proc[cell(i, s, k)]).max().unwrap_or(0);
            b_sum += (0..pr).map(|j| b_proc[cell(s, j, k)]).max().unwrap_or(0);
        }
        sweep_a = sweep_a.max(a_sum);
        sweep_b = sweep_b.max(b_sum);
    }
    GridShape {
        l,
        pr,
        inner: an,
        max_nnz_a_proc: a_proc.iter().copied().max().unwrap_or(0),
        max_nnz_b_proc: b_proc.iter().copied().max().unwrap_or(0),
        sweep_nnz_a: sweep_a,
        sweep_nnz_b: sweep_b,
    }
}

/// What limited (or sank) a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingConstraint {
    /// Memory is ample: one batch suffices; time alone ranks the candidate.
    SingleBatch,
    /// The memory budget set the batch count (Alg. 3 / Eq. 2 binding).
    MemoryBudget,
    /// The batch count clamped at one column per batch — the finest
    /// column-wise batching allows.
    ColumnGranularity,
    /// Infeasible: the inputs alone exceed the per-process budget.
    InputsTooLarge,
    /// Infeasible: a single output column's intermediate exceeds the
    /// memory left after the inputs.
    ColumnTooLarge,
}

impl BindingConstraint {
    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            BindingConstraint::SingleBatch => "single-batch",
            BindingConstraint::MemoryBudget => "memory-budget",
            BindingConstraint::ColumnGranularity => "column-granularity",
            BindingConstraint::InputsTooLarge => "inputs-too-large",
            BindingConstraint::ColumnTooLarge => "column-too-large",
        }
    }
}

/// Predicted per-step seconds (critical-path estimate).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PredictedSteps {
    /// Symbolic3D communication (zero when the batch count is forced).
    pub symbolic_comm: f64,
    /// Symbolic3D computation.
    pub symbolic_comp: f64,
    /// A-Broadcast (rebroadcast every batch; zero under `SparseFetch`).
    pub abcast: f64,
    /// Sparse A fetch — request round plus owner-serialised replies
    /// (zero under `DenseBcast`).
    pub fetch: f64,
    /// B-Broadcast (bandwidth batch-count-independent).
    pub bbcast: f64,
    /// Local multiply.
    pub multiply: f64,
    /// Merge-Layer.
    pub merge_layer: f64,
    /// AllToAll-Fiber.
    pub alltoall_fiber: f64,
    /// Merge-Fiber.
    pub merge_fiber: f64,
    /// 1.5D A-block ring shifts (zero for the SUMMA families).
    pub ashift: f64,
    /// 1.5D InnerABC partial-`C` allgather (zero elsewhere).
    pub creduce: f64,
}

impl PredictedSteps {
    /// Blocking-mode sum of every step.
    pub fn sum(&self) -> f64 {
        self.symbolic_comm
            + self.symbolic_comp
            + self.abcast
            + self.fetch
            + self.bbcast
            + self.multiply
            + self.merge_layer
            + self.alltoall_fiber
            + self.merge_fiber
            + self.ashift
            + self.creduce
    }
}

/// Everything the planner predicts about one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePrediction {
    /// The configuration evaluated.
    pub candidate: Candidate,
    /// Derived batch count (0 when infeasible).
    pub batches: usize,
    /// Eq. 2 analytic lower bound on `b` from the probe's estimates.
    pub eq2_bound: usize,
    /// What bound the batch count / sank the candidate.
    pub constraint: BindingConstraint,
    /// Per-step predicted seconds.
    pub steps: PredictedSteps,
    /// α-term seconds across all communication.
    pub latency_s: f64,
    /// β-term seconds across all communication.
    pub bandwidth_s: f64,
    /// Local computation seconds.
    pub compute_s: f64,
    /// Broadcast seconds hidden under multiply (overlapped mode only).
    pub hidden_s: f64,
    /// One-time costs an iterative session amortizes over its run:
    /// the symbolic sweep (when a single batch lets the session skip
    /// re-running it) plus the SparseFetch request-index bytes (memoized
    /// `needed_rows` make warm-iteration requests ~free). Zero for
    /// single-shot plans.
    pub one_time_s: f64,
    /// Predicted **per-iteration** makespan: warm-iteration time plus
    /// `one_time_s / iterations`. With `iterations = 1` this is exactly
    /// the single-shot `steps.sum() − hidden_s` (`∞` when infeasible).
    pub total_s: f64,
    /// Predicted per-process peak bytes (inputs + one batch's unmerged
    /// intermediate).
    pub peak_bytes_per_proc: usize,
    /// The irreducible part of the peak: per-process input bytes under
    /// this candidate's placement. Batching cannot shrink this term.
    pub input_bytes_per_proc: usize,
    /// The batch-divisible part of the peak: the heaviest process's
    /// *unmerged* intermediate at `b = 1`. The peak at any batch count is
    /// `input_bytes_per_proc + ceil(unmerged_bytes_per_proc / b)` — the
    /// arithmetic an admission controller replays when it shrinks a job
    /// to fit a partially-consumed budget.
    pub unmerged_bytes_per_proc: usize,
    /// Why the candidate is infeasible (empty when feasible).
    pub note: String,
}

impl CandidatePrediction {
    /// Can this configuration run under the budget at all?
    pub fn feasible(&self) -> bool {
        !matches!(
            self.constraint,
            BindingConstraint::InputsTooLarge | BindingConstraint::ColumnTooLarge
        )
    }
}

fn infeasible(
    candidate: Candidate,
    constraint: BindingConstraint,
    eq2_bound: usize,
    note: String,
) -> CandidatePrediction {
    CandidatePrediction {
        candidate,
        batches: 0,
        eq2_bound,
        constraint,
        steps: PredictedSteps::default(),
        latency_s: 0.0,
        bandwidth_s: 0.0,
        compute_s: 0.0,
        hidden_s: 0.0,
        one_time_s: 0.0,
        total_s: f64::INFINITY,
        peak_bytes_per_proc: usize::MAX,
        input_bytes_per_proc: usize::MAX,
        unmerged_bytes_per_proc: usize::MAX,
        note,
    }
}

/// Evaluate one candidate against the machine and budget.
///
/// `include_symbolic` charges the Symbolic3D pass a real run would
/// perform; sweeps that force the batch count set it to `false`.
///
/// `iterations` is the number of times the application will repeat the
/// multiplication over resident operands (an `IterSession`-style run);
/// one-time setup costs — the symbolic sweep when a single batch lets the
/// session skip re-running it, and the SparseFetch request-index bytes
/// that memoized `needed_rows` sets make ~free on warm iterations — are
/// divided by it, so the ranking answers "which configuration is fastest
/// *per iteration* over the whole run". `iterations = 1` reproduces the
/// single-shot prediction exactly.
#[allow(clippy::too_many_arguments)] // SPMD-style bundle of model inputs
pub fn predict_candidate(
    p: usize,
    shape: &GridShape,
    est: &ProbeEstimate,
    machine: &Machine,
    budget: &MemoryBudget,
    include_symbolic: bool,
    iterations: usize,
    candidate: Candidate,
) -> CandidatePrediction {
    debug_assert_eq!(shape.l, candidate.layers);
    let (pr, l) = (shape.pr, candidate.layers);
    let r = budget.r;
    let scale = est.scale;
    let n = est.total_cols;

    // ---- Memory model (Alg. 3 on probe estimates) --------------------
    let per_proc = budget.per_process(p);
    let input_bytes = r * (shape.max_nnz_a_proc + shape.max_nnz_b_proc) as usize;
    let eq2 = budget.eq2_lower_bound(
        (r as f64 * est.nnz_c as f64) as usize, // refined below; placeholder scale
        est.nnz_a as usize,
        est.nnz_b as usize,
    );
    if per_proc <= input_bytes {
        return infeasible(
            candidate,
            BindingConstraint::InputsTooLarge,
            eq2.unwrap_or(0),
            format!(
                "inputs need {input_bytes} bytes/process but the budget allows {per_proc}"
            ),
        );
    }
    let denom = per_proc - input_bytes;

    // ---- Occupancy sums over the probed columns ----------------------
    let cells_mult = (pr * pr * l) as f64; // (i, k, stage) cells per column
    let mut unmerged_total = 0.0; // Σ over cells of stage-level distinct
    let mut max_col_rank = 0.0f64; // one column's unmerged nnz on one rank
    let mut per_colblock_unmerged = vec![0.0f64; pr]; // per owning rank (i,·,k)
    let mut mult_work = 0.0;
    let mut merge_layer_work = 0.0;
    let mut merge_fiber_work = 0.0;
    let mut sym_work = 0.0;
    let mut max_send_layer_merged = vec![0.0f64; pr];

    for (idx, &gj) in est.cols.iter().enumerate() {
        let f = est.col_flops[idx] as f64;
        let d = est.col_nnz[idx] as f64;
        let k_streams = est.col_bnnz[idx] as f64;
        if f <= 0.0 {
            continue;
        }
        let bins = (d / pr as f64).max(1.0);
        let fpc = f / cells_mult; // flops per (i, k, stage) cell
        let u_cell = occ(fpc, bins); // distinct per stage cell
        let om = occ(f / (pr * l) as f64, bins); // after Merge-Layer, per (i, k)
        let of = occ(f / pr as f64, bins); // after Merge-Fiber, per i
        let col_rank_unmerged = pr as f64 * u_cell; // per (i, k) rank over a sweep
        let jb = block_index(n.max(1), pr, gj);

        unmerged_total += (pr * l) as f64 * col_rank_unmerged;
        max_col_rank = max_col_rank.max(col_rank_unmerged);
        per_colblock_unmerged[jb] += col_rank_unmerged;
        max_send_layer_merged[jb] += om; // per (i, k) rank of block jb

        // Local multiply work (per cell, mirroring the kernels' formulas).
        let w_cell = match candidate.kernels {
            KernelStrategy::New => fpc * C_HASH_FLOP + u_cell * C_DRAIN,
            KernelStrategy::Previous => {
                let kc = (k_streams / (pr * l) as f64).max(1.0);
                if kc <= HEAP_STREAMS_MAX {
                    fpc * lg(kc) * C_HEAP_FLOP
                } else {
                    fpc * C_HASH_FLOP + u_cell * lg(u_cell) * C_SORT
                }
            }
        };
        mult_work += cells_mult * w_cell;

        if pr > 1 {
            let merge_in = pr as f64 * u_cell;
            let w_ml = match candidate.kernels {
                KernelStrategy::New => merge_in * C_MERGE_HASH + om * C_DRAIN,
                KernelStrategy::Previous => merge_in * lg(pr as f64) * C_MERGE_HEAP,
            };
            merge_layer_work += (pr * l) as f64 * w_ml;
        }
        if l > 1 {
            let fiber_in = l as f64 * om;
            let w_mf = match candidate.kernels {
                KernelStrategy::New => {
                    fiber_in * C_MERGE_HASH + of * C_DRAIN + of * lg(of) * C_SORT
                }
                KernelStrategy::Previous => fiber_in * lg(l as f64) * C_MERGE_HEAP,
            };
            merge_fiber_work += pr as f64 * w_mf;
        }
        sym_work += f * (C_HASH_FLOP * 0.5) + cells_mult * u_cell * (C_DRAIN * 0.25);
    }

    // Load imbalance across process columns (ratio of the heaviest
    // column-block to the mean), from the probe's per-block sums.
    let block_sum: f64 = per_colblock_unmerged.iter().sum();
    let gamma = if block_sum > 0.0 {
        (per_colblock_unmerged.iter().copied().fold(0.0, f64::max) * pr as f64 / block_sum)
            .clamp(1.0, 3.0)
    } else {
        1.0
    };

    let max_unmerged_proc = scale
        * per_colblock_unmerged
            .iter()
            .copied()
            .fold(0.0, f64::max);
    let total_unmerged = scale * unmerged_total;

    // Single-column feasibility (the paper's upper bound on b).
    let max_col_bytes = (r as f64 * max_col_rank).ceil() as usize;
    if max_col_bytes > denom {
        return infeasible(
            candidate,
            BindingConstraint::ColumnTooLarge,
            eq2.unwrap_or(0),
            format!(
                "one output column needs ~{max_col_bytes} intermediate bytes but only \
                 {denom} remain after the inputs"
            ),
        );
    }

    let mem_c_bytes = (r as f64 * total_unmerged).ceil() as usize;
    let eq2_bound = match budget.eq2_lower_bound(mem_c_bytes, est.nnz_a as usize, est.nnz_b as usize)
    {
        Some(bnd) => bnd,
        None => {
            return infeasible(
                candidate,
                BindingConstraint::InputsTooLarge,
                0,
                "global inputs alone exhaust the aggregate budget".into(),
            )
        }
    };
    let b_alg3 = ((r as f64 * max_unmerged_proc / denom as f64).ceil() as usize).max(1);
    let b_raw = b_alg3.max(eq2_bound);
    let batches = b_raw.clamp(1, n.max(1));
    let constraint = if batches == 1 {
        BindingConstraint::SingleBatch
    } else if b_raw > n {
        BindingConstraint::ColumnGranularity
    } else {
        BindingConstraint::MemoryBudget
    };
    let unmerged_bytes_per_proc = (r as f64 * max_unmerged_proc).ceil() as usize;
    let peak_bytes_per_proc =
        input_bytes + ((r as f64 * max_unmerged_proc / batches as f64).ceil() as usize);

    // ---- Time model (same Machine formulas the simulator charges) ----
    let b = batches as f64;
    let lg_pr = if pr > 1 { (pr as f64).log2().ceil() } else { 0.0 };
    let lg_p = if p > 1 { (p as f64).log2().ceil() } else { 0.0 };

    // Sparsity-aware fetch cost of one full A sweep. The critical path is
    // the stage owner, which serves its pr−1 row peers serially: one
    // request round (4-byte row indices) plus replies carrying only the
    // needed A columns. `b_piece` is the expected nnz of the B block a
    // receiver derives its needed set from; the occupancy of the stage's
    // inner-dimension slice gives the expected fraction of A columns
    // actually shipped.
    // Returns (latency, request-index bytes time, reply bytes time); the
    // request term is separated because an iterative session's memoized
    // `needed_rows` sets turn warm-iteration requests into α-only rounds.
    let fetch_sweep = |b_piece: f64| -> (f64, f64, f64) {
        if pr <= 1 {
            return (0.0, 0.0, 0.0); // A is already local to the row.
        }
        let bins = (shape.inner as f64 / (pr * l) as f64).max(1.0);
        let needed = occ(b_piece, bins);
        let frac = (needed / bins).min(1.0);
        let lat = pr as f64 * 2.0 * (pr - 1) as f64 * machine.alpha;
        let req_bw = (pr - 1) as f64 * machine.beta * pr as f64 * 4.0 * needed;
        let rep_bw =
            (pr - 1) as f64 * machine.beta * frac * (r as u64 * shape.sweep_nnz_a) as f64;
        (lat, req_bw, rep_bw)
    };

    let (ab_lat, ab_bw, fetch_lat, fetch_req_bw, fetch_rep_bw) = match candidate.exchange {
        ExchangeMode::DenseBcast => (
            b * pr as f64 * machine.alpha * lg_pr,
            b * machine.beta * (r as u64 * shape.sweep_nnz_a) as f64,
            0.0,
            0.0,
            0.0,
        ),
        ExchangeMode::SparseFetch => {
            // A batch sees 1/b of B's columns, so the per-stage B piece —
            // and with it the needed set — shrinks as b grows.
            let (lat, req, rep) = fetch_sweep(shape.sweep_nnz_b as f64 / (pr as f64 * b));
            (0.0, 0.0, b * lat, b * req, b * rep)
        }
    };
    let fetch_bw = fetch_req_bw + fetch_rep_bw;
    let bb_lat = b * pr as f64 * machine.alpha * lg_pr;
    let bb_bw = machine.beta * (r as u64 * shape.sweep_nnz_b) as f64;
    let (a2a_lat, a2a_bw) = if l > 1 {
        // The collective charges the heaviest sender's full payload: a
        // rank ships all but 1/l of its layer-merged block along the
        // fiber, and column batches partition that total across batches.
        let send_max = scale * max_send_layer_merged.iter().copied().fold(0.0, f64::max);
        (
            b * (l - 1) as f64 * machine.alpha,
            machine.beta * r as f64 * send_max * (1.0 - 1.0 / l as f64),
        )
    } else {
        (0.0, 0.0)
    };

    let t_mult = machine.compute_secs(mult_work * scale * gamma / p as f64);
    let t_ml = machine.compute_secs(merge_layer_work * scale * gamma / p as f64);
    let t_mf = machine.compute_secs(merge_fiber_work * scale * gamma / p as f64);

    let (sym_comm, sym_comp) = if include_symbolic {
        // The symbolic sweep moves operands through the same exchange plan
        // as the numeric phase: under SparseFetch its A leg is fetched too
        // (single batch, so the needed set comes from the full B piece).
        let b_leg = pr as f64 * machine.alpha * lg_pr
            + machine.beta * (r as u64 * shape.sweep_nnz_b) as f64;
        let a_leg = match candidate.exchange {
            ExchangeMode::DenseBcast => {
                pr as f64 * machine.alpha * lg_pr
                    + machine.beta * (r as u64 * shape.sweep_nnz_a) as f64
            }
            ExchangeMode::SparseFetch => {
                let (lat, req, rep) = fetch_sweep(shape.sweep_nnz_b as f64 / pr as f64);
                lat + req + rep
            }
        };
        let reduce = 8.0 * (machine.alpha * lg_p + machine.beta * 8.0);
        (
            a_leg + b_leg + reduce,
            machine.compute_secs(sym_work * scale * gamma / p as f64),
        )
    } else {
        (0.0, 0.0)
    };

    let steps = PredictedSteps {
        symbolic_comm: sym_comm,
        symbolic_comp: sym_comp,
        abcast: ab_lat + ab_bw,
        fetch: fetch_lat + fetch_bw,
        bbcast: bb_lat + bb_bw,
        multiply: t_mult,
        merge_layer: t_ml,
        alltoall_fiber: a2a_lat + a2a_bw,
        merge_fiber: t_mf,
        ashift: 0.0,
        creduce: 0.0,
    };

    // Overlapped mode: every stage's broadcast after the first hides under
    // the previous stage's multiply.
    let stages = (b * pr as f64).max(1.0);
    let hidden = match candidate.overlap {
        OverlapMode::Blocking => 0.0,
        OverlapMode::Overlapped => {
            // SparseFetch posts only the B broadcast ahead of the stage;
            // the A fetch needs the received B's structure and runs at
            // wait time, so it is never hidden.
            let hideable = match candidate.exchange {
                ExchangeMode::DenseBcast => steps.abcast + steps.bbcast,
                ExchangeMode::SparseFetch => steps.bbcast,
            };
            let c_stage = hideable / stages;
            let m_stage = steps.multiply / stages;
            (stages - 1.0) * c_stage.min(m_stage)
        }
    };

    // ---- Iteration amortization (session model) ----------------------
    // Two costs are one-time for a resident-operand iterative run:
    //  * the symbolic sweep, when it concludes b = 1 — the session skips
    //    re-running it (re-batching decisions can't change);
    //  * SparseFetch request-index bytes — warm iterations send a tiny
    //    "unchanged" token instead of the full `needed_rows` set (the α
    //    round and the replies stay per-iteration).
    // Reported total_s is the per-iteration average, so one number still
    // ranks candidates and iterations = 1 degenerates to the single shot.
    let mut one_time = 0.0;
    if batches == 1 {
        one_time += sym_comm + sym_comp;
    }
    if candidate.exchange == ExchangeMode::SparseFetch {
        one_time += fetch_req_bw;
    }
    let n_iter = iterations.max(1) as f64;
    let single_shot = steps.sum() - hidden;

    CandidatePrediction {
        candidate,
        batches,
        eq2_bound,
        constraint,
        steps,
        latency_s: ab_lat + fetch_lat + bb_lat + a2a_lat,
        bandwidth_s: ab_bw + fetch_bw + bb_bw + a2a_bw,
        compute_s: t_mult + t_ml + t_mf + sym_comp,
        hidden_s: hidden,
        one_time_s: one_time,
        total_s: (single_shot - one_time) + one_time / n_iter,
        peak_bytes_per_proc,
        input_bytes_per_proc: input_bytes,
        unmerged_bytes_per_proc,
        note: String::new(),
    }
}

/// Per-inner-block nonzero profile of `A` for a 1.5D family with `t`
/// column blocks over the inner dimension — the exact placement scan
/// [`predict_family15`] charges shift traffic from (the 1.5D analogue of
/// [`grid_shape`]).
pub fn family15_block_nnz<T: Copy>(a: &CscMatrix<T>, t: usize) -> Vec<u64> {
    let mut nnz = vec![0u64; t.max(1)];
    for j in 0..a.ncols() {
        nnz[block_index(a.ncols(), t.max(1), j)] += a.col(j).0.len() as u64;
    }
    nnz
}

/// Evaluate one 1.5D candidate (`ColA15` / `InnerAbc15`) against the
/// machine and budget — the family-layer counterpart of
/// [`predict_candidate`].
///
/// The model mirrors the `family15::spmm_15d` driver's accounting move
/// for move. `B` is dense (or densified) at 8 bytes per entry; `A` blocks
/// travel the ring at [`R_BYTES_PER_NNZ`] bytes per nonzero, one
/// `α + β·bytes` message per shift round; InnerABC's partial-`C`
/// reduction is an allgather over the `c`-member team plus a
/// member-order fold at [`C_SPMM_FLOP`] work units per add. There is no
/// batching: the replicated stationary operands either fit the
/// per-process budget or the candidate is infeasible outright — the
/// Eq. 2-style replication-memory penalty that lets batched SUMMA win
/// back memory-constrained sparse-sparse workloads.
///
/// `block_nnz` is [`family15_block_nnz`] at this family's `t = p/c`.
pub fn predict_family15(
    p: usize,
    block_nnz: &[u64],
    est: &ProbeEstimate,
    machine: &Machine,
    budget: &MemoryBudget,
    candidate: Candidate,
) -> CandidatePrediction {
    let fam = candidate.family;
    let c = fam.repl_factor();
    let t = p / c;
    debug_assert!(fam.is_15d());
    debug_assert_eq!(block_nnz.len(), t.max(1));
    let (m, n_inner, d) = (est.nrows_a, est.nrows_b, est.total_cols);
    const ELEM: usize = 8; // modeled dense element size (f64-class scalar)

    // ---- Stationary layout (widest stripe ~ ceil over the fat blocks) --
    let stripe_parts = match fam {
        AlgorithmFamily::ColA15 { .. } => p,
        _ => t,
    };
    let w = if d == 0 { 0 } else { d.div_ceil(stripe_parts) };
    let b_stripe_bytes = ELEM * n_inner * w;
    let c_stripe_bytes = ELEM * m * w;
    let dense_bytes = b_stripe_bytes + c_stripe_bytes;

    // ---- Replication memory (driver's peak_bytes, exactly) ------------
    let max_block = block_nnz.iter().copied().max().unwrap_or(0) as usize;
    let rounds = match fam {
        AlgorithmFamily::ColA15 { .. } => t,
        _ => t / c,
    };
    let a_resident = if rounds > 1 { 2 } else { 1 } * R_BYTES_PER_NNZ * max_block;
    let mut peak = a_resident + dense_bytes;
    if matches!(fam, AlgorithmFamily::InnerAbc15 { .. }) && c > 1 {
        peak = peak.max(dense_bytes + c * c_stripe_bytes);
    }
    let per_proc = budget.per_process(p);
    if per_proc <= peak {
        return infeasible(
            candidate,
            BindingConstraint::InputsTooLarge,
            0,
            format!(
                "stationary 1.5D operands (c={c}, dense stripes + replicated A blocks) need \
                 {peak} bytes/process but the budget allows {per_proc}; the family cannot batch"
            ),
        );
    }

    // ---- A-Shift: each rank forwards every ring block but its last ----
    // The critical rank's bytes are its ring's total minus the lightest
    // block (the one a rank can end holding without ever sending it).
    let (shift_rounds, shift_nnz): (usize, u64) = match fam {
        AlgorithmFamily::ColA15 { .. } if t > 1 => {
            let total: u64 = block_nnz.iter().sum();
            (t - 1, total - block_nnz.iter().copied().min().unwrap_or(0))
        }
        AlgorithmFamily::InnerAbc15 { .. } if t / c > 1 => {
            // Layer ℓ's sub-rings rotate the blocks {k : k ≡ ℓ (mod c)};
            // the heaviest layer is the critical path.
            let worst = (0..c)
                .map(|layer| {
                    let ring: Vec<u64> = (layer..t).step_by(c).map(|k| block_nnz[k]).collect();
                    ring.iter().sum::<u64>() - ring.iter().copied().min().unwrap_or(0)
                })
                .max()
                .unwrap_or(0);
            (t / c - 1, worst)
        }
        _ => (0, 0),
    };
    let ashift_lat = shift_rounds as f64 * machine.alpha;
    let ashift_bw = machine.beta * (shift_nnz as usize * R_BYTES_PER_NNZ) as f64;

    // ---- C-Reduce (InnerABC, c > 1): allgather + member-order fold ----
    let (creduce_lat, creduce_bw, fold_work) =
        if matches!(fam, AlgorithmFamily::InnerAbc15 { .. }) && c > 1 {
            let lg_c = (c as f64).log2().ceil();
            (
                machine.alpha * lg_c,
                machine.beta * (c_stripe_bytes * (c - 1)) as f64,
                ((c - 1) * m * w) as f64 * C_SPMM_FLOP,
            )
        } else {
            (0.0, 0.0, 0.0)
        };

    // ---- Compute: the SpMM does exactly the sparse flops (zero entries
    // of the densified B are skipped), at the dense-accumulator rate. ----
    // Stripe imbalance from the probe's per-column flops.
    let mut per_stripe = vec![0.0f64; stripe_parts.max(1)];
    for (idx, &gj) in est.cols.iter().enumerate() {
        if d > 0 {
            per_stripe[block_index(d, stripe_parts.max(1), gj)] += est.col_flops[idx] as f64;
        }
    }
    let stripe_sum: f64 = per_stripe.iter().sum();
    let gamma = if stripe_sum > 0.0 {
        (per_stripe.iter().copied().fold(0.0, f64::max) * stripe_parts as f64 / stripe_sum)
            .clamp(1.0, 3.0)
    } else {
        1.0
    };
    let t_mult = machine.compute_secs(est.flops as f64 * C_SPMM_FLOP * gamma / p as f64);
    let t_fold = machine.compute_secs(fold_work);

    let steps = PredictedSteps {
        multiply: t_mult,
        merge_fiber: t_fold, // the fold is charged to Merge-Fiber, like the driver
        ashift: ashift_lat + ashift_bw,
        creduce: creduce_lat + creduce_bw,
        ..PredictedSteps::default()
    };

    CandidatePrediction {
        candidate,
        batches: 1,
        eq2_bound: 1,
        constraint: BindingConstraint::SingleBatch,
        steps,
        latency_s: ashift_lat + creduce_lat,
        bandwidth_s: ashift_bw + creduce_bw,
        compute_s: t_mult + t_fold,
        hidden_s: 0.0,
        one_time_s: 0.0,
        total_s: steps.sum(),
        peak_bytes_per_proc: peak,
        input_bytes_per_proc: peak,
        unmerged_bytes_per_proc: 0,
        note: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::ops::block_range;

    #[test]
    fn block_index_inverts_block_range() {
        for n in [1usize, 5, 7, 16, 100, 101] {
            for parts in [1usize, 2, 3, 7, 16] {
                for k in 0..parts {
                    for x in block_range(n, parts, k) {
                        assert_eq!(
                            block_index(n, parts, x),
                            k,
                            "n={n} parts={parts} x={x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn occupancy_limits() {
        // Few balls: nearly no collisions -> occ ~ balls.
        assert!((occ(3.0, 1e9) - 3.0).abs() < 1e-6);
        // Many balls: all bins hit -> occ -> bins.
        assert!((occ(1e9, 50.0) - 50.0).abs() < 1e-6);
        // Monotone in balls.
        assert!(occ(10.0, 20.0) < occ(20.0, 20.0));
        assert_eq!(occ(0.0, 10.0), 0.0);
    }

    #[test]
    fn grid_shape_conserves_nnz() {
        use spgemm_sparse::gen::er_random;
        use spgemm_sparse::semiring::PlusTimesF64;
        let a = er_random::<PlusTimesF64>(50, 50, 5, 3);
        let b = er_random::<PlusTimesF64>(50, 50, 5, 4);
        for (pr, l) in [(2usize, 1usize), (2, 4), (4, 1)] {
            let s = grid_shape(&a, &b, pr, l);
            let p = (pr * pr * l) as u64;
            // Maxima bound the means.
            assert!(s.max_nnz_a_proc >= a.nnz() as u64 / p);
            assert!(s.max_nnz_b_proc >= b.nnz() as u64 / p);
            // Each of a layer's pr broadcast stages costs at least one
            // process's block, so the stage-max sweep bounds both the
            // per-process max and the layer's mean volume.
            assert!(s.sweep_nnz_a >= s.max_nnz_a_proc);
            assert!(s.sweep_nnz_a >= a.nnz() as u64 / (pr as u64 * l as u64));
            assert!(s.sweep_nnz_b >= s.max_nnz_b_proc);
        }
    }
}
