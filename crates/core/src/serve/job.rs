//! Job vocabulary of the serve subsystem: what a tenant submits and what
//! the server reports back.

use crate::memory::MemoryBudget;
use spgemm_simgrid::StepBreakdown;
use spgemm_sparse::CscMatrix;
use std::time::Duration;

/// Monotone id the server assigns to each submitted job.
pub type JobId = u64;

/// Handle to a matrix registered with the server's operand store.
///
/// Jobs reference operands by handle so that a thousand-job workload over
/// a handful of matrices never copies or re-hashes them per submission;
/// the store also memoizes each handle pair's structural probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperandId(pub(crate) u32);

impl OperandId {
    /// The store slot this handle names (stable for the server's life).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Scheduling priority. Higher admits first; FIFO within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Batch / best-effort work.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive work: admitted ahead of everything else.
    High,
}

/// Which semiring the multiplication runs under (the server's operands
/// are `f64` matrices; the semiring picks the algebra over them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobSemiring {
    /// Ordinary `(+, ×)` numeric SpGEMM.
    #[default]
    PlusTimes,
    /// Tropical `(min, +)` — shortest-path style products.
    MinPlus,
}

/// One multiply request: operand handles plus per-job policy.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Left operand handle (from [`super::JobServer::register`]).
    pub a: OperandId,
    /// Right operand handle.
    pub b: OperandId,
    /// Algebra to multiply under.
    pub semiring: JobSemiring,
    /// Simulated ranks this job runs on.
    pub p: usize,
    /// The job's own memory budget (aggregate over its `p` ranks). The
    /// planner derives layers and the Alg. 3 batch count from it; the
    /// admission controller charges the resulting Eq. 2 peak against the
    /// *global* budget, so a job never gets more than it asked for and
    /// the server never promises more than it has.
    pub budget: MemoryBudget,
    /// Scheduling class.
    pub priority: Priority,
    /// Give up if not **admitted** within this long of submission; the
    /// job is then explicitly rejected with
    /// [`RejectReason::DeadlineExpired`] rather than left to starve.
    pub deadline: Option<Duration>,
    /// Gather and return the product (`true`) or discard each batch after
    /// formation (`false`, the memory-constrained application pattern).
    pub keep_output: bool,
}

impl JobSpec {
    /// A normal-priority keep-output job with the given operands, ranks
    /// and budget.
    pub fn new(a: OperandId, b: OperandId, p: usize, budget: MemoryBudget) -> Self {
        JobSpec {
            a,
            b,
            semiring: JobSemiring::default(),
            p,
            budget,
            priority: Priority::default(),
            deadline: None,
            keep_output: true,
        }
    }
}

/// Why the server refused a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// An operand handle does not name a registered matrix.
    UnknownOperand,
    /// `ncols(A) != nrows(B)`.
    DimensionMismatch,
    /// The planner found no feasible configuration under the *job's own*
    /// budget (inputs too large, or one output column's intermediate
    /// cannot fit).
    PlanInfeasible(String),
    /// Even at maximum batching the job's modeled peak exceeds the
    /// server's **global** budget: no amount of waiting can admit it.
    NeverFits {
        /// Aggregate modeled bytes the job needs at its finest batching.
        min_bytes: usize,
        /// The server's global budget.
        budget_bytes: usize,
    },
    /// The job's queue deadline passed before admission.
    DeadlineExpired,
    /// The server was shut down while the job was still queued.
    ServerShutdown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::UnknownOperand => write!(f, "unknown operand handle"),
            RejectReason::DimensionMismatch => write!(f, "inner dimensions differ"),
            RejectReason::PlanInfeasible(msg) => write!(f, "plan infeasible: {msg}"),
            RejectReason::NeverFits {
                min_bytes,
                budget_bytes,
            } => write!(
                f,
                "needs {min_bytes} modeled bytes even at maximum batching but the global \
                 budget is {budget_bytes}"
            ),
            RejectReason::DeadlineExpired => write!(f, "queue deadline expired"),
            RejectReason::ServerShutdown => write!(f, "server shut down"),
        }
    }
}

/// How the admission controller let a job in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitKind {
    /// Admitted at the planner's batch count.
    AsPlanned,
    /// Admitted after shrink-and-batch: the batch count was raised from
    /// the planned value so the job's peak fits the budget *currently*
    /// available (trading A-rebroadcast time for earlier admission).
    Shrunk {
        /// The planner's batch count under the job's own budget.
        planned_batches: usize,
        /// The batch count actually run.
        forced_batches: usize,
    },
}

/// Where the job's plan came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// Probe ran and the full candidate ranking was computed.
    Fresh,
    /// The operand pair had been probed before (same handles): the probe
    /// was skipped, but this (budget, p) combination still needed a
    /// predict pass.
    ProbeReused,
    /// Full plan-cache hit: probe *and* predict skipped.
    Cached,
}

/// What happened to one job, returned through its ticket.
#[derive(Debug)]
pub struct JobReport {
    /// The server-assigned id.
    pub id: JobId,
    /// Completion or explicit rejection.
    pub outcome: JobOutcome,
    /// Seconds between submission and admission (wall clock).
    pub queue_secs: f64,
    /// Seconds the multiply itself took (wall clock).
    pub run_secs: f64,
    /// Seconds between submission and the report (wall clock).
    pub total_secs: f64,
    /// Plan provenance (probe/predict skipped or not).
    pub plan_source: Option<PlanSource>,
}

/// Terminal job state.
#[derive(Debug)]
pub enum JobOutcome {
    /// The multiply ran to completion.
    Completed(Box<CompletedJob>),
    /// The server refused the job (never silently dropped).
    Rejected(RejectReason),
}

/// Everything a finished multiply reports.
#[derive(Debug)]
pub struct CompletedJob {
    /// The product, when the spec asked to keep it.
    pub c: Option<CscMatrix<f64>>,
    /// `nnz(C)` of the gathered product (0 when the output was
    /// discarded batch-wise).
    pub nnz_c: usize,
    /// How the job was admitted (as planned or shrunk).
    pub admit: AdmitKind,
    /// Aggregate modeled bytes the admission controller reserved for the
    /// job's lifetime.
    pub reserved_bytes: usize,
    /// Batches actually executed.
    pub nbatches: usize,
    /// Grid layers the plan chose.
    pub layers: usize,
    /// Modeled critical-path step breakdown (max over the job's ranks) —
    /// feeds the existing `StepReport` machinery.
    pub breakdown: StepBreakdown,
    /// Max over the job's ranks of the *runtime*-tracked modeled peak
    /// bytes (per process).
    pub peak_bytes_per_proc: usize,
}

impl JobReport {
    /// Convenience for tests and load generators.
    pub fn completed(&self) -> Option<&CompletedJob> {
        match &self.outcome {
            JobOutcome::Completed(c) => Some(c),
            JobOutcome::Rejected(_) => None,
        }
    }

    /// Was the job explicitly rejected?
    pub fn rejected(&self) -> Option<&RejectReason> {
        match &self.outcome {
            JobOutcome::Completed(_) => None,
            JobOutcome::Rejected(r) => Some(r),
        }
    }
}
