//! The resident job server: SpGEMM as a multi-tenant service.
//!
//! One [`JobServer`] owns an operand store, a scheduler thread and a pool
//! of worker threads. Tenants [`JobServer::register`] matrices once, then
//! [`JobServer::submit`] multiply jobs against the returned handles; each
//! job is planned (probe → predict, both memoized by the
//! [`super::PlanCache`]), judged by the [`super::AdmissionController`]
//! against the **global** memory budget, and — once admitted — executed on
//! the simulated cluster as its own world of rank threads, labeled
//! `job-J-rank-I` via [`crate::harness::RunConfig::job`].
//!
//! ## Job lifecycle
//!
//! ```text
//! submit ──▶ validate ──▶ plan (cache) ──▶ decide ──┬▶ run ──▶ report
//!               │                            │      │
//!               ▼                            ▼      ▼ (shrink-and-batch:
//!            reject                        queue      raised b)
//!        (unknown operand,                   │
//!         dim mismatch,          release of a running job,
//!         plan infeasible,       re-decide in (priority, seq)
//!         never fits)            order; deadline ⇒ reject
//! ```
//!
//! Every submitted job terminates in exactly one report — completed or
//! *explicitly* rejected; nothing is silently dropped. For a finite
//! submission stream that guarantees no starvation: once submissions stop,
//! running jobs drain, the whole budget frees, and every queued job either
//! fits (min demand ≤ global budget was checked at submit) or was already
//! rejected as never-fitting.
//!
//! ## Threading
//!
//! The scheduler thread owns all mutable policy state (queue, admission
//! ledger, plan cache) — no locks on the decision path. Workers pull
//! admitted jobs from a shared channel and run the multiply; each multiply
//! internally spawns its `p` rank threads, so `max_concurrency` bounds the
//! number of concurrent *worlds*, while the admission controller bounds
//! their aggregate modeled memory.

use super::admission::{AdmissionController, Decision, JobDemand};
use super::cache::{CacheStats, CachedPlan, PlanCache, PlanKey};
use super::job::{
    AdmitKind, CompletedJob, JobId, JobOutcome, JobReport, JobSemiring, JobSpec, OperandId,
    PlanSource, Priority, RejectReason,
};
use crate::backend::BackendKind;
use crate::family15::AlgorithmFamily;
use crate::harness::{run_spgemm, RunConfig, RunOutput};
use crate::planner::{self, Candidate, PlannerConfig, ProbeConfig, StructuralSketch};
use spgemm_simgrid::{CheckMode, Machine, StepBreakdown};
use spgemm_sparse::semiring::{MinPlusF64, PlusTimesF64};
use spgemm_sparse::CscMatrix;
use std::cmp::Reverse;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the per-job planner chooses the algorithm family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyPolicy {
    /// Every job is planned within one fixed family (the historical
    /// behaviour is `Fixed(Summa3dBatched)`, the default).
    Fixed(AlgorithmFamily),
    /// Sweep every family valid at the job's `p` (including every
    /// replication factor `c`) and run the predicted winner.
    Sweep,
}

impl Default for FamilyPolicy {
    fn default() -> Self {
        FamilyPolicy::Fixed(AlgorithmFamily::Summa3dBatched)
    }
}

impl FamilyPolicy {
    /// The family list handed to the planner for a job on `p` processes.
    pub fn families_for(self, p: usize) -> Vec<AlgorithmFamily> {
        match self {
            FamilyPolicy::Fixed(f) => vec![f],
            FamilyPolicy::Sweep => AlgorithmFamily::sweep(p),
        }
    }
}

/// Server-wide policy: the global budget and the execution substrate.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Global memory budget (aggregate modeled bytes across every
    /// concurrently admitted job). The admission controller never lets
    /// the sum of admitted jobs' Eq. 2 peaks exceed this.
    pub budget_bytes: usize,
    /// Worker threads — the maximum number of concurrently *running*
    /// multiply worlds (each world spawns its own `p` rank threads).
    pub max_concurrency: usize,
    /// Plan-cache capacity (plans, not probes; 0 disables plan caching).
    pub cache_capacity: usize,
    /// Machine cost model every job is planned and simulated against.
    pub machine: Machine,
    /// Kernel execution backend for admitted runs.
    pub backend: BackendKind,
    /// Collective-protocol verification mode for admitted runs.
    pub check: CheckMode,
    /// Allow shrink-and-batch admission (raise a job's batch count so its
    /// peak fits the budget *currently* available instead of queueing).
    pub shrink: bool,
    /// Probe sampling parameters (part of every sketch, so changing them
    /// naturally partitions the plan cache).
    pub probe: ProbeConfig,
    /// Algorithm families the per-job planner considers.
    pub families: FamilyPolicy,
}

impl ServerConfig {
    /// Defaults: 4 workers, 64-plan cache, KNL model, default backend and
    /// check mode, shrink-and-batch on.
    pub fn new(budget_bytes: usize) -> Self {
        ServerConfig {
            budget_bytes,
            max_concurrency: 4,
            cache_capacity: 64,
            machine: Machine::knl(),
            backend: BackendKind::default_kind(),
            check: CheckMode::default_mode(),
            shrink: true,
            probe: ProbeConfig::default(),
            families: FamilyPolicy::default(),
        }
    }
}

/// Aggregate server counters, snapshotted by [`JobServer::stats`] and
/// returned by [`JobServer::shutdown`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Jobs ever submitted.
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs explicitly rejected (any reason).
    pub rejected: u64,
    /// Completed jobs admitted via shrink-and-batch.
    pub shrunk_admissions: u64,
    /// Jobs that spent time in the queue before their terminal state.
    pub queued_ever: u64,
    /// High-water mark of the queue depth.
    pub peak_queue_depth: usize,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Running jobs at snapshot time.
    pub running: usize,
    /// The global budget.
    pub budget_bytes: usize,
    /// Reserved bytes at snapshot time.
    pub reserved_bytes: usize,
    /// High-water mark of reserved bytes — always `≤ budget_bytes`.
    pub peak_reserved_bytes: usize,
    /// Plan/probe cache counters.
    pub cache: CacheStats,
}

/// Handle to one submitted job; [`JobTicket::wait`] blocks for its report.
#[derive(Debug)]
pub struct JobTicket {
    /// The server-assigned id (also in the report).
    pub id: JobId,
    rx: Receiver<JobReport>,
}

impl JobTicket {
    /// Block until the job completes or is rejected.
    pub fn wait(self) -> JobReport {
        self.rx
            .recv()
            .expect("job server dropped a reply channel without reporting")
    }
}

// ---------------------------------------------------------------------
// Wire types between the public handle, the scheduler and the workers.
// ---------------------------------------------------------------------

struct Submission {
    id: JobId,
    spec: JobSpec,
    reply: Sender<JobReport>,
    submitted: Instant,
}

/// What a worker hands back from a finished run (scheduler fills in the
/// admission fields it alone knows).
struct RunBits {
    c: Option<CscMatrix<f64>>,
    nnz_c: usize,
    nbatches: usize,
    layers: usize,
    breakdown: StepBreakdown,
    peak_bytes_per_proc: usize,
}

enum Msg {
    Submit(Box<Submission>),
    Done {
        id: JobId,
        result: Result<Box<RunBits>, String>,
        run_secs: f64,
    },
    Stats(Sender<ServerStats>),
    Shutdown(Sender<ServerStats>),
}

struct WorkItem {
    id: JobId,
    p: usize,
    semiring: JobSemiring,
    keep_output: bool,
    budget: crate::memory::MemoryBudget,
    a: Arc<CscMatrix<f64>>,
    b: Arc<CscMatrix<f64>>,
    candidate: Candidate,
    batches: usize,
    machine: Machine,
    backend: BackendKind,
    check: CheckMode,
}

/// A planned job waiting for budget.
struct Pending {
    id: JobId,
    seq: u64,
    priority: Priority,
    spec: JobSpec,
    demand: JobDemand,
    candidate: Candidate,
    a: Arc<CscMatrix<f64>>,
    b: Arc<CscMatrix<f64>>,
    deadline_at: Option<Instant>,
}

/// Per-job bookkeeping the scheduler keeps until the report goes out.
struct JobMeta {
    reply: Sender<JobReport>,
    submitted: Instant,
    admitted: Option<Instant>,
    plan_source: Option<PlanSource>,
    admit: Option<AdmitKind>,
    reserved: usize,
}

// ---------------------------------------------------------------------
// Public handle
// ---------------------------------------------------------------------

type OperandStore = Arc<RwLock<Vec<Arc<CscMatrix<f64>>>>>;

/// The resident multi-tenant SpGEMM server.
#[derive(Debug)]
pub struct JobServer {
    tx: Sender<Msg>,
    store: OperandStore,
    next_id: AtomicU64,
    scheduler: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl JobServer {
    /// Start the scheduler and worker pool.
    pub fn start(cfg: ServerConfig) -> Self {
        let store: OperandStore = Arc::new(RwLock::new(Vec::new()));
        let (tx, rx) = channel::<Msg>();
        let (work_tx, work_rx) = channel::<WorkItem>();
        let work_rx = Arc::new(Mutex::new(work_rx));

        let workers: Vec<JoinHandle<()>> = (0..cfg.max_concurrency.max(1))
            .map(|w| {
                let work_rx = Arc::clone(&work_rx);
                let done_tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&work_rx, &done_tx))
                    .expect("spawn serve worker")
            })
            .collect();

        let sched_store = Arc::clone(&store);
        let scheduler = std::thread::Builder::new()
            .name("serve-scheduler".into())
            .spawn(move || Scheduler::new(cfg, sched_store, work_tx).run(&rx))
            .expect("spawn serve scheduler");

        JobServer {
            tx,
            store,
            next_id: AtomicU64::new(0),
            scheduler: Some(scheduler),
            workers,
        }
    }

    /// Register a matrix with the operand store. The handle stays valid
    /// for the server's whole life; operands are immutable once
    /// registered (that immutability is what makes the probe memo exact).
    pub fn register(&self, m: CscMatrix<f64>) -> OperandId {
        let mut store = self.store.write().expect("operand store poisoned");
        let id = u32::try_from(store.len()).expect("operand store overflow");
        store.push(Arc::new(m));
        OperandId(id)
    }

    /// Submit a job; the returned ticket's [`JobTicket::wait`] blocks for
    /// its report.
    pub fn submit(&self, spec: JobSpec) -> JobTicket {
        let (reply, rx) = channel();
        let id = self.submit_with(spec, reply);
        JobTicket { id, rx }
    }

    /// Submit a job whose report goes to a caller-supplied channel — the
    /// load generator's closed loop shares one channel across every
    /// outstanding job so any completion can trigger the next submission.
    pub fn submit_with(&self, spec: JobSpec, reply: Sender<JobReport>) -> JobId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let sub = Submission {
            id,
            spec,
            reply,
            submitted: Instant::now(),
        };
        if let Err(failed) = self.tx.send(Msg::Submit(Box::new(sub))) {
            // Scheduler already gone: still uphold "every job reports".
            let Msg::Submit(sub) = failed.0 else {
                unreachable!("send failure returns the submit we sent")
            };
            let _ = sub.reply.send(JobReport {
                id,
                outcome: JobOutcome::Rejected(RejectReason::ServerShutdown),
                queue_secs: 0.0,
                run_secs: 0.0,
                total_secs: 0.0,
                plan_source: None,
            });
        }
        id
    }

    /// Snapshot the server counters.
    pub fn stats(&self) -> ServerStats {
        let (tx, rx) = channel();
        if self.tx.send(Msg::Stats(tx)).is_err() {
            return ServerStats::default();
        }
        rx.recv().unwrap_or_default()
    }

    /// Stop accepting work, reject everything still queued
    /// ([`RejectReason::ServerShutdown`]), wait for running jobs to
    /// finish, and return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_inner().unwrap_or_default()
    }

    fn shutdown_inner(&mut self) -> Option<ServerStats> {
        let scheduler = self.scheduler.take()?;
        let (tx, rx) = channel();
        let stats = if self.tx.send(Msg::Shutdown(tx)).is_ok() {
            rx.recv().ok()
        } else {
            None
        };
        let _ = scheduler.join();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        stats
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

fn worker_loop(work_rx: &Arc<Mutex<Receiver<WorkItem>>>, done_tx: &Sender<Msg>) {
    loop {
        // Hold the lock only for the dequeue, never across a run.
        let item = match work_rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(item) = item else { return };
        let start = Instant::now();
        let result = execute(&item).map(|out| {
            Box::new(RunBits {
                nnz_c: out.c.as_ref().map_or(0, CscMatrix::nnz),
                c: out.c,
                nbatches: out.nbatches,
                layers: out.layers,
                breakdown: out.max,
                peak_bytes_per_proc: out.peak_bytes.iter().copied().max().unwrap_or(0),
            })
        });
        let msg = Msg::Done {
            id: item.id,
            result,
            run_secs: start.elapsed().as_secs_f64(),
        };
        if done_tx.send(msg).is_err() {
            return;
        }
    }
}

fn execute(item: &WorkItem) -> Result<RunOutput<f64>, String> {
    let mut rc = RunConfig::new(item.p, item.candidate.layers);
    rc.machine = item.machine;
    rc.kernels = item.candidate.kernels;
    rc.overlap = item.candidate.overlap;
    rc.exchange = item.candidate.exchange;
    rc.algorithm = item.candidate.family;
    rc.budget = item.budget;
    rc.forced_batches = Some(item.batches);
    rc.discard_output = !item.keep_output;
    rc.check = item.check;
    rc.backend = item.backend;
    rc.job = Some(item.id);
    match item.semiring {
        JobSemiring::PlusTimes => run_spgemm::<PlusTimesF64>(&rc, &item.a, &item.b),
        JobSemiring::MinPlus => run_spgemm::<MinPlusF64>(&rc, &item.a, &item.b),
    }
    .map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

struct Scheduler {
    cfg: ServerConfig,
    store: OperandStore,
    work_tx: Sender<WorkItem>,
    admission: AdmissionController,
    cache: PlanCache,
    queue: Vec<Pending>,
    meta: HashMap<JobId, JobMeta>,
    running: usize,
    seq: u64,
    shutting_down: bool,
    shutdown_reply: Option<Sender<ServerStats>>,
    stats: ServerStats,
}

impl Scheduler {
    fn new(cfg: ServerConfig, store: OperandStore, work_tx: Sender<WorkItem>) -> Self {
        Scheduler {
            admission: AdmissionController::new(cfg.budget_bytes, cfg.shrink),
            cache: PlanCache::new(cfg.cache_capacity),
            cfg,
            store,
            work_tx,
            queue: Vec::new(),
            meta: HashMap::new(),
            running: 0,
            seq: 0,
            shutting_down: false,
            shutdown_reply: None,
            stats: ServerStats::default(),
        }
    }

    fn run(mut self, rx: &Receiver<Msg>) {
        loop {
            let msg = match self.next_deadline_in() {
                Some(wait) => match rx.recv_timeout(wait) {
                    Ok(m) => Some(m),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                },
                None => match rx.recv() {
                    Ok(m) => Some(m),
                    Err(_) => break,
                },
            };
            if let Some(m) = msg {
                self.handle(m);
            }
            self.expire_deadlines();
            self.drain_queue();
            if self.shutting_down && self.running == 0 {
                if let Some(reply) = self.shutdown_reply.take() {
                    let _ = reply.send(self.snapshot());
                }
                break;
            }
        }
        // Dropping `work_tx` (with `self`) ends the worker loops.
    }

    fn handle(&mut self, msg: Msg) {
        match msg {
            Msg::Submit(sub) => self.handle_submit(*sub),
            Msg::Done {
                id,
                result,
                run_secs,
            } => self.handle_done(id, result, run_secs),
            Msg::Stats(reply) => {
                let _ = reply.send(self.snapshot());
            }
            Msg::Shutdown(reply) => {
                self.shutting_down = true;
                self.shutdown_reply = Some(reply);
                let queued: Vec<Pending> = std::mem::take(&mut self.queue);
                for pend in queued {
                    self.reject(pend.id, RejectReason::ServerShutdown);
                }
            }
        }
    }

    fn snapshot(&self) -> ServerStats {
        ServerStats {
            queue_depth: self.queue.len(),
            running: self.running,
            budget_bytes: self.admission.budget_bytes(),
            reserved_bytes: self.admission.reserved(),
            peak_reserved_bytes: self.admission.peak_reserved(),
            cache: self.cache.stats(),
            ..self.stats
        }
    }

    fn handle_submit(&mut self, sub: Submission) {
        self.stats.submitted += 1;
        self.meta.insert(
            sub.id,
            JobMeta {
                reply: sub.reply,
                submitted: sub.submitted,
                admitted: None,
                plan_source: None,
                admit: None,
                reserved: 0,
            },
        );
        if self.shutting_down {
            self.reject(sub.id, RejectReason::ServerShutdown);
            return;
        }
        let (plan, source, a, b) = match self.plan_job(&sub.spec) {
            Ok(parts) => parts,
            Err(reason) => {
                self.reject(sub.id, reason);
                return;
            }
        };
        if let Some(m) = self.meta.get_mut(&sub.id) {
            m.plan_source = Some(source);
        }
        self.seq += 1;
        let deadline_at = sub.spec.deadline.map(|d| sub.submitted + d);
        let pending = Pending {
            id: sub.id,
            seq: self.seq,
            priority: sub.spec.priority,
            demand: plan.demand,
            candidate: plan.candidate,
            spec: sub.spec,
            a,
            b,
            deadline_at,
        };
        if let Some(pending) = self.try_admit(pending) {
            self.stats.queued_ever += 1;
            self.queue.push(pending);
            self.stats.peak_queue_depth = self.stats.peak_queue_depth.max(self.queue.len());
        }
    }

    /// Plan the job, going through both cache levels. Returns the plan,
    /// its provenance, and the resolved operands.
    #[allow(clippy::type_complexity)] // internal submit-path bundle
    fn plan_job(
        &mut self,
        spec: &JobSpec,
    ) -> Result<
        (CachedPlan, PlanSource, Arc<CscMatrix<f64>>, Arc<CscMatrix<f64>>),
        RejectReason,
    > {
        if spec.p == 0 {
            return Err(RejectReason::PlanInfeasible("p must be at least 1".into()));
        }
        let (a, b) = {
            let store = self.store.read().expect("operand store poisoned");
            let a = store
                .get(spec.a.index())
                .cloned()
                .ok_or(RejectReason::UnknownOperand)?;
            let b = store
                .get(spec.b.index())
                .cloned()
                .ok_or(RejectReason::UnknownOperand)?;
            (a, b)
        };
        if a.ncols() != b.nrows() {
            return Err(RejectReason::DimensionMismatch);
        }

        let pair = (spec.a, spec.b);
        let (sketch, est, probe_reused) = match self.cache.probe_lookup(pair) {
            Some((sketch, est)) => (sketch, est, true),
            None => {
                let est = planner::probe(&a, &b, &self.cfg.probe)
                    .map_err(|e| RejectReason::PlanInfeasible(e.to_string()))?;
                let sketch = StructuralSketch::from_probe(&est, &self.cfg.probe);
                let est = Arc::new(est);
                self.cache.probe_insert(pair, sketch, Arc::clone(&est));
                (sketch, est, false)
            }
        };

        let key = PlanKey {
            sketch: sketch.hash,
            p: spec.p,
            budget_bytes: spec.budget.total_bytes,
        };
        if let Some(plan) = self.cache.get(&key) {
            return Ok((plan, PlanSource::Cached, a, b));
        }

        let mut pcfg = PlannerConfig::new(self.cfg.machine, spec.budget);
        pcfg.probe = self.cfg.probe;
        pcfg.families = self.cfg.families.families_for(spec.p);
        let report = planner::plan_with_probe(spec.p, &*a, &*b, &pcfg, &est)
            .map_err(|e| RejectReason::PlanInfeasible(e.to_string()))?;
        let winner = report.winner().ok_or_else(|| {
            let why = report
                .ranked
                .first()
                .map_or_else(|| "no candidates".into(), |c| c.note.clone());
            RejectReason::PlanInfeasible(why)
        })?;
        let plan = CachedPlan {
            candidate: winner.candidate,
            batches: winner.batches,
            demand: JobDemand {
                p: spec.p,
                input_bytes_per_proc: winner.input_bytes_per_proc,
                unmerged_bytes_per_proc: winner.unmerged_bytes_per_proc,
                planned_batches: winner.batches,
                max_batches: b.ncols().max(1),
            },
            sketch,
        };
        self.cache.insert(key, plan.clone());
        let source = if probe_reused {
            PlanSource::ProbeReused
        } else {
            PlanSource::Fresh
        };
        Ok((plan, source, a, b))
    }

    /// Decide a planned job now. Returns the job back when it must queue.
    fn try_admit(&mut self, pending: Pending) -> Option<Pending> {
        match self.admission.decide(&pending.demand) {
            Decision::Admit { batches, bytes } => {
                self.dispatch(pending, batches, bytes, AdmitKind::AsPlanned);
                None
            }
            Decision::AdmitShrunk { batches, bytes } => {
                let kind = AdmitKind::Shrunk {
                    planned_batches: pending.demand.planned_batches,
                    forced_batches: batches,
                };
                self.dispatch(pending, batches, bytes, kind);
                None
            }
            Decision::Queue => Some(pending),
            Decision::Reject { min_bytes } => {
                let budget_bytes = self.admission.budget_bytes();
                self.reject(
                    pending.id,
                    RejectReason::NeverFits {
                        min_bytes,
                        budget_bytes,
                    },
                );
                None
            }
        }
    }

    fn dispatch(&mut self, pending: Pending, batches: usize, bytes: usize, kind: AdmitKind) {
        self.admission.admit(pending.id, bytes);
        if let Some(m) = self.meta.get_mut(&pending.id) {
            m.admitted = Some(Instant::now());
            m.admit = Some(kind);
            m.reserved = bytes;
        }
        if matches!(kind, AdmitKind::Shrunk { .. }) {
            self.stats.shrunk_admissions += 1;
        }
        self.running += 1;
        let item = WorkItem {
            id: pending.id,
            p: pending.spec.p,
            semiring: pending.spec.semiring,
            keep_output: pending.spec.keep_output,
            budget: pending.spec.budget,
            a: pending.a,
            b: pending.b,
            candidate: pending.candidate,
            batches,
            machine: self.cfg.machine,
            backend: self.cfg.backend,
            check: self.cfg.check,
        };
        // Workers only exit after this sender drops, so this cannot fail
        // while the scheduler lives.
        let _ = self.work_tx.send(item);
    }

    fn handle_done(&mut self, id: JobId, result: Result<Box<RunBits>, String>, run_secs: f64) {
        self.running -= 1;
        self.admission.release(id);
        let Some(meta) = self.meta.remove(&id) else {
            return;
        };
        let now = Instant::now();
        let queue_secs = meta
            .admitted
            .map_or(0.0, |t| (t - meta.submitted).as_secs_f64());
        let outcome = match result {
            Ok(bits) => {
                self.stats.completed += 1;
                JobOutcome::Completed(Box::new(CompletedJob {
                    c: bits.c,
                    nnz_c: bits.nnz_c,
                    admit: meta.admit.unwrap_or(AdmitKind::AsPlanned),
                    reserved_bytes: meta.reserved,
                    nbatches: bits.nbatches,
                    layers: bits.layers,
                    breakdown: bits.breakdown,
                    peak_bytes_per_proc: bits.peak_bytes_per_proc,
                }))
            }
            Err(msg) => {
                self.stats.rejected += 1;
                JobOutcome::Rejected(RejectReason::PlanInfeasible(format!("run failed: {msg}")))
            }
        };
        let _ = meta.reply.send(JobReport {
            id,
            outcome,
            queue_secs,
            run_secs,
            total_secs: (now - meta.submitted).as_secs_f64(),
            plan_source: meta.plan_source,
        });
    }

    fn reject(&mut self, id: JobId, reason: RejectReason) {
        let Some(meta) = self.meta.remove(&id) else {
            return;
        };
        self.stats.rejected += 1;
        let waited = meta.submitted.elapsed().as_secs_f64();
        let _ = meta.reply.send(JobReport {
            id,
            outcome: JobOutcome::Rejected(reason),
            queue_secs: waited,
            run_secs: 0.0,
            total_secs: waited,
            plan_source: meta.plan_source,
        });
    }

    fn next_deadline_in(&self) -> Option<Duration> {
        let now = Instant::now();
        self.queue
            .iter()
            .filter_map(|p| p.deadline_at)
            .min()
            .map(|at| at.saturating_duration_since(now).min(Duration::from_millis(50)))
    }

    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].deadline_at.is_some_and(|at| at <= now) {
                let pend = self.queue.remove(i);
                self.reject(pend.id, RejectReason::DeadlineExpired);
            } else {
                i += 1;
            }
        }
    }

    /// Backfill: re-decide queued jobs in (priority, submission) order
    /// until a full pass admits nothing.
    fn drain_queue(&mut self) {
        loop {
            if self.queue.is_empty() {
                return;
            }
            let mut order: Vec<usize> = (0..self.queue.len()).collect();
            order.sort_by_key(|&i| (Reverse(self.queue[i].priority), self.queue[i].seq));
            let mut admitted_one = false;
            for &i in &order {
                // Pure decision first; only on admit do we remove + dispatch.
                match self.admission.decide(&self.queue[i].demand) {
                    Decision::Queue => {}
                    _ => {
                        let pend = self.queue.remove(i);
                        let back = self.try_admit(pend);
                        debug_assert!(back.is_none(), "decide/admit disagreed");
                        admitted_one = true;
                        break; // indices shifted; rebuild the order
                    }
                }
            }
            if !admitted_one {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBudget;
    use spgemm_sparse::gen::er_random;

    fn small_server(budget: usize) -> (JobServer, OperandId, OperandId) {
        let mut cfg = ServerConfig::new(budget);
        cfg.machine = Machine::knl_mini();
        cfg.max_concurrency = 2;
        let server = JobServer::start(cfg);
        let a = server.register(er_random::<PlusTimesF64>(48, 48, 4, 1001));
        let b = server.register(er_random::<PlusTimesF64>(48, 48, 4, 1002));
        (server, a, b)
    }

    #[test]
    fn single_job_matches_direct_run() {
        let (server, a, b) = small_server(usize::MAX / 4);
        let spec = JobSpec::new(a, b, 4, MemoryBudget::unlimited());
        let report = server.submit(spec).wait();
        let done = report.completed().expect("ample budget completes");
        assert_eq!(report.plan_source, Some(PlanSource::Fresh));
        assert_eq!(done.admit, AdmitKind::AsPlanned);

        // Bit-identical to a direct harness run of the same plan.
        let am = er_random::<PlusTimesF64>(48, 48, 4, 1001);
        let bm = er_random::<PlusTimesF64>(48, 48, 4, 1002);
        let mut rc = RunConfig::auto(4);
        rc.machine = Machine::knl_mini();
        let direct = run_spgemm::<PlusTimesF64>(&rc, &am, &bm).unwrap();
        assert!(done.c.as_ref().unwrap().eq_modulo_order(direct.c.as_ref().unwrap()));
        let stats = server.shutdown();
        assert_eq!((stats.submitted, stats.completed, stats.rejected), (1, 1, 0));
        assert!(stats.peak_reserved_bytes <= stats.budget_bytes);
    }

    #[test]
    fn repeat_jobs_hit_the_plan_cache() {
        let (server, a, b) = small_server(usize::MAX / 4);
        let first = server
            .submit(JobSpec::new(a, b, 4, MemoryBudget::unlimited()))
            .wait();
        assert_eq!(first.plan_source, Some(PlanSource::Fresh));
        for _ in 0..3 {
            let rep = server
                .submit(JobSpec::new(a, b, 4, MemoryBudget::unlimited()))
                .wait();
            assert_eq!(rep.plan_source, Some(PlanSource::Cached));
        }
        // Same pair, different p: probe memo hits, plan level misses.
        let rep = server
            .submit(JobSpec::new(a, b, 16, MemoryBudget::unlimited()))
            .wait();
        assert_eq!(rep.plan_source, Some(PlanSource::ProbeReused));
        let stats = server.shutdown();
        assert_eq!(stats.cache.plan_hits, 3);
        assert_eq!(stats.cache.plan_misses, 2);
        assert_eq!(stats.cache.probe_misses, 1);
        assert!(stats.cache.probe_hits >= 4);
    }

    #[test]
    fn bad_submissions_are_rejected_with_reasons() {
        let (server, a, _b) = small_server(usize::MAX / 4);
        let wide = server.register(er_random::<PlusTimesF64>(24, 24, 2, 1003));
        let rep = server
            .submit(JobSpec::new(a, wide, 4, MemoryBudget::unlimited()))
            .wait();
        assert_eq!(rep.rejected(), Some(&RejectReason::DimensionMismatch));
        let rep = server
            .submit(JobSpec::new(
                OperandId(99),
                a,
                4,
                MemoryBudget::unlimited(),
            ))
            .wait();
        assert_eq!(rep.rejected(), Some(&RejectReason::UnknownOperand));
        // A job whose minimum demand exceeds the global budget.
        let tiny = JobServer::start(ServerConfig {
            machine: Machine::knl_mini(),
            ..ServerConfig::new(64)
        });
        let ta = tiny.register(er_random::<PlusTimesF64>(48, 48, 4, 1004));
        let rep = tiny.submit(JobSpec::new(ta, ta, 4, MemoryBudget::unlimited())).wait();
        assert!(
            matches!(rep.rejected(), Some(RejectReason::NeverFits { .. })),
            "{:?}",
            rep.outcome
        );
        drop(server);
        drop(tiny);
    }

    #[test]
    fn min_plus_jobs_run_the_tropical_semiring() {
        let (server, a, b) = small_server(usize::MAX / 4);
        let mut spec = JobSpec::new(a, b, 4, MemoryBudget::unlimited());
        spec.semiring = JobSemiring::MinPlus;
        let done = server.submit(spec).wait();
        let done = done.completed().expect("completes");
        let am = er_random::<PlusTimesF64>(48, 48, 4, 1001);
        let bm = er_random::<PlusTimesF64>(48, 48, 4, 1002);
        let mut rc = RunConfig::auto(4);
        rc.machine = Machine::knl_mini();
        let direct = run_spgemm::<MinPlusF64>(&rc, &am, &bm).unwrap();
        assert!(done.c.as_ref().unwrap().eq_modulo_order(direct.c.as_ref().unwrap()));
    }
}
