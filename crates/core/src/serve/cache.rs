//! Two-level plan cache: probe memo by operand handle, plan memo by
//! structural sketch.
//!
//! Planning a job costs a structure probe over the operands plus a
//! predict pass over every candidate grid. A serving workload is
//! repeat-heavy — a thousand jobs over a handful of operand shapes — so
//! both costs are memoized, at different keys:
//!
//! * **Probe memo** — keyed by the *handle pair* `(OperandId, OperandId)`.
//!   Handles are interned by the operand store and matrices are immutable
//!   once registered, so a hit is exact by construction: no hashing of
//!   matrix content on the submit path at all.
//! * **Plan cache** — keyed by [`PlanKey`]: the pair's
//!   [`StructuralSketch`] hash plus the run parameters that change the
//!   planner's answer (`p` and the job's budget). This level also dedups
//!   *structurally identical* pairs registered under different handles —
//!   the sketch is value-insensitive, so re-registered copies of the same
//!   pattern still hit.
//!
//! A full hit skips probe *and* predict ([`super::PlanSource::Cached`]);
//! a probe-memo hit with a plan miss skips only the probe
//! ([`super::PlanSource::ProbeReused`]). Eviction is LRU over a logical
//! tick counter (no wall clock — deterministic under test), and
//! [`CacheStats`] counts hits, misses and evictions for the server's
//! report.

use super::admission::JobDemand;
use super::job::OperandId;
use crate::planner::{Candidate, ProbeEstimate, StructuralSketch};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything besides structure that changes what the planner would say.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`StructuralSketch::hash`] of the operand pair.
    pub sketch: u64,
    /// Process count the plan was made for.
    pub p: usize,
    /// The job's own budget (total bytes) the batch count was derived
    /// under.
    pub budget_bytes: usize,
}

/// A memoized planning decision, ready to run without probe or predict.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The winning configuration (layers, kernels, overlap, exchange).
    pub candidate: Candidate,
    /// The batch count the planner derived under the job's budget.
    pub batches: usize,
    /// The memory shape admission control replays (planned and shrunk).
    pub demand: JobDemand,
    /// The full sketch the key's hash came from, kept for introspection
    /// and for verifying a lookup against hash collision in tests.
    pub sketch: StructuralSketch,
}

/// Hit/miss/eviction counters for both cache levels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plan-cache hits (probe *and* predict skipped).
    pub plan_hits: u64,
    /// Plan-cache misses (predict ran).
    pub plan_misses: u64,
    /// Plans evicted to stay within capacity.
    pub plan_evictions: u64,
    /// Probe-memo hits (probe skipped for a known handle pair).
    pub probe_hits: u64,
    /// Probe-memo misses (the pair was probed).
    pub probe_misses: u64,
}

impl CacheStats {
    /// Plan-cache hit rate in `[0, 1]` (0 when nothing was looked up).
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_hits + self.plan_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_hits as f64 / total as f64
        }
    }
}

/// The serve subsystem's plan cache (both levels plus stats).
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    plans: HashMap<PlanKey, (CachedPlan, u64)>,
    probes: HashMap<(OperandId, OperandId), (StructuralSketch, Arc<ProbeEstimate>)>,
    stats: CacheStats,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (0 disables the plan
    /// level; the probe memo is unbounded — one entry per registered pair
    /// actually multiplied, which the operand store already bounds).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            tick: 0,
            plans: HashMap::new(),
            probes: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look up the memoized probe of a handle pair.
    pub fn probe_lookup(
        &mut self,
        pair: (OperandId, OperandId),
    ) -> Option<(StructuralSketch, Arc<ProbeEstimate>)> {
        match self.probes.get(&pair) {
            Some((sketch, est)) => {
                self.stats.probe_hits += 1;
                Some((*sketch, Arc::clone(est)))
            }
            None => {
                self.stats.probe_misses += 1;
                None
            }
        }
    }

    /// Memoize a freshly taken probe for a handle pair.
    pub fn probe_insert(
        &mut self,
        pair: (OperandId, OperandId),
        sketch: StructuralSketch,
        est: Arc<ProbeEstimate>,
    ) {
        self.probes.insert(pair, (sketch, est));
    }

    /// Look up a plan, bumping its recency on hit.
    pub fn get(&mut self, key: &PlanKey) -> Option<CachedPlan> {
        self.tick += 1;
        match self.plans.get_mut(key) {
            Some((plan, used)) => {
                *used = self.tick;
                self.stats.plan_hits += 1;
                Some(plan.clone())
            }
            None => {
                self.stats.plan_misses += 1;
                None
            }
        }
    }

    /// Insert a plan, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, key: PlanKey, plan: CachedPlan) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.plans.contains_key(&key) && self.plans.len() >= self.capacity {
            if let Some(victim) = self
                .plans
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| *k)
            {
                self.plans.remove(&victim);
                self.stats.plan_evictions += 1;
            }
        }
        self.plans.insert(key, (plan, self.tick));
    }

    /// Plans currently resident.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// No plans resident?
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::ExchangeMode;
    use crate::family15::AlgorithmFamily;
    use crate::kernels::KernelStrategy;
    use crate::summa2d::OverlapMode;

    fn plan_for(sketch_hash: u64) -> CachedPlan {
        CachedPlan {
            candidate: Candidate {
                family: AlgorithmFamily::Summa3dBatched,
                layers: 1,
                kernels: KernelStrategy::New,
                overlap: OverlapMode::Blocking,
                exchange: ExchangeMode::DenseBcast,
            },
            batches: 2,
            demand: JobDemand {
                p: 4,
                input_bytes_per_proc: 100,
                unmerged_bytes_per_proc: 400,
                planned_batches: 2,
                max_batches: 32,
            },
            sketch: StructuralSketch {
                hash: sketch_hash,
                nrows_a: 8,
                inner: 8,
                ncols_b: 8,
                nnz_a: 16,
                nnz_b: 16,
                flops: 32,
                nnz_c: 20,
                sampled_cols: 8,
            },
        }
    }

    fn key(sketch: u64) -> PlanKey {
        PlanKey {
            sketch,
            p: 4,
            budget_bytes: 1 << 20,
        }
    }

    #[test]
    fn lru_evicts_the_stalest_plan() {
        let mut cache = PlanCache::new(2);
        cache.insert(key(1), plan_for(1));
        cache.insert(key(2), plan_for(2));
        assert!(cache.get(&key(1)).is_some()); // 1 is now fresher than 2
        cache.insert(key(3), plan_for(3)); // evicts 2
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        let s = cache.stats();
        assert_eq!(s.plan_evictions, 1);
        assert_eq!(s.plan_hits, 3);
        assert_eq!(s.plan_misses, 1);
    }

    #[test]
    fn key_distinguishes_p_and_budget_not_just_sketch() {
        let mut cache = PlanCache::new(8);
        cache.insert(key(7), plan_for(7));
        assert!(cache.get(&key(7)).is_some());
        assert!(cache.get(&PlanKey { p: 16, ..key(7) }).is_none());
        assert!(cache
            .get(&PlanKey {
                budget_bytes: 1 << 21,
                ..key(7)
            })
            .is_none());
    }

    #[test]
    fn zero_capacity_disables_plan_level() {
        let mut cache = PlanCache::new(0);
        cache.insert(key(1), plan_for(1));
        assert!(cache.is_empty());
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().plan_evictions, 0);
    }

    #[test]
    fn hit_rate_counts_both_levels_separately() {
        let mut cache = PlanCache::new(4);
        assert_eq!(cache.stats().plan_hit_rate(), 0.0);
        cache.insert(key(1), plan_for(1));
        cache.get(&key(1));
        cache.get(&key(1));
        cache.get(&key(9));
        assert!((cache.stats().plan_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        // Probe memo counts independently of the plan level.
        let (s, e) = (plan_for(1).sketch, Arc::new(dummy_probe()));
        let pair = (OperandId(0), OperandId(1));
        assert!(cache.probe_lookup(pair).is_none());
        cache.probe_insert(pair, s, e);
        assert!(cache.probe_lookup(pair).is_some());
        let st = cache.stats();
        assert_eq!((st.probe_hits, st.probe_misses), (1, 1));
    }

    fn dummy_probe() -> ProbeEstimate {
        ProbeEstimate {
            nrows_a: 8,
            nrows_b: 8,
            total_cols: 8,
            cols: vec![0, 1],
            scale: 4.0,
            nnz_a: 16,
            nnz_b: 16,
            flops: 12,
            nnz_c: 12,
            col_flops: vec![1, 2],
            col_nnz: vec![1, 2],
            col_bnnz: vec![1, 1],
            work_units: 0.0,
        }
    }
}
