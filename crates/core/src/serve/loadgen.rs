//! Load generation against a running [`JobServer`]: open- and closed-loop
//! arrival, latency percentiles, and a CSV-friendly report.
//!
//! The generator draws jobs from a caller-supplied spec pool (the bench
//! builds fig3/fig4-shaped workloads; the CLI builds small synthetic
//! ones), submits them under one of two arrival processes, and reduces
//! the per-job [`JobReport`]s into the numbers a serving system is judged
//! by — throughput, p50/p99 latency, queue behaviour, admission and
//! plan-cache statistics:
//!
//! * **Open loop** ([`ArrivalProcess::Open`]): submissions arrive at a
//!   fixed rate regardless of completions, the canonical way to expose
//!   queueing — when offered load exceeds capacity, the queue (and p99)
//!   grows.
//! * **Closed loop** ([`ArrivalProcess::Closed`]): a fixed number of
//!   tenants each keep exactly one job outstanding, the canonical way to
//!   measure saturated throughput without unbounded queues.
//!
//! Spec selection is seeded and deterministic (splitmix64), so a loadgen
//! run is reproducible end to end: same pool, same seed → same submission
//! sequence.

use super::job::{JobOutcome, JobReport, JobSpec};
use super::server::{JobServer, ServerStats};
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

/// How submissions arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Fixed-rate submission, independent of completions.
    Open {
        /// Submissions per second (`f64::INFINITY` = submit as fast as
        /// possible).
        rate_hz: f64,
    },
    /// `concurrency` tenants, each with exactly one job outstanding.
    Closed {
        /// Outstanding jobs to maintain.
        concurrency: usize,
    },
}

/// One load-generation campaign.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Total jobs to submit.
    pub jobs: usize,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Seed of the deterministic spec picker.
    pub seed: u64,
}

/// What one campaign measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs explicitly rejected.
    pub rejected: usize,
    /// Wall-clock seconds from first submission to last report.
    pub wall_secs: f64,
    /// Completed jobs per wall-clock second.
    pub throughput_jobs_per_sec: f64,
    /// Median submit→report latency (completed jobs).
    pub p50_total_secs: f64,
    /// 99th-percentile submit→report latency (completed jobs).
    pub p99_total_secs: f64,
    /// Median submit→admit wait (completed jobs).
    pub p50_queue_secs: f64,
    /// 99th-percentile submit→admit wait (completed jobs).
    pub p99_queue_secs: f64,
    /// Final server counters (queue depth highs, admission decisions,
    /// cache hits — everything in [`ServerStats`]).
    pub server: ServerStats,
}

impl LoadgenReport {
    /// CSV header matching [`LoadgenReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "jobs,completed,rejected,wall_secs,throughput_jobs_per_sec,\
         p50_total_secs,p99_total_secs,p50_queue_secs,p99_queue_secs,\
         peak_queue_depth,shrunk_admissions,plan_hits,plan_misses,\
         plan_evictions,plan_hit_rate,probe_hits,probe_misses,\
         peak_reserved_bytes,budget_bytes"
    }

    /// One CSV row of every measured quantity.
    pub fn csv_row(&self) -> String {
        let s = &self.server;
        format!(
            "{},{},{},{:.6},{:.3},{:.6},{:.6},{:.6},{:.6},{},{},{},{},{},{:.4},{},{},{},{}",
            self.jobs,
            self.completed,
            self.rejected,
            self.wall_secs,
            self.throughput_jobs_per_sec,
            self.p50_total_secs,
            self.p99_total_secs,
            self.p50_queue_secs,
            self.p99_queue_secs,
            s.peak_queue_depth,
            s.shrunk_admissions,
            s.cache.plan_hits,
            s.cache.plan_misses,
            s.cache.plan_evictions,
            s.cache.plan_hit_rate(),
            s.cache.probe_hits,
            s.cache.probe_misses,
            s.peak_reserved_bytes,
            s.budget_bytes,
        )
    }

    /// Human-readable summary table.
    pub fn to_table(&self) -> String {
        let s = &self.server;
        format!(
            "jobs {} | completed {} | rejected {}\n\
             wall {:.3}s | throughput {:.1} jobs/s\n\
             latency p50 {:.4}s p99 {:.4}s | queue wait p50 {:.4}s p99 {:.4}s\n\
             peak queue depth {} | shrunk admissions {} | queued ever {}\n\
             plan cache: {} hits / {} misses ({:.0}% hit rate), {} evictions\n\
             probe memo: {} hits / {} misses\n\
             budget: peak reserved {} of {} bytes",
            self.jobs,
            self.completed,
            self.rejected,
            self.wall_secs,
            self.throughput_jobs_per_sec,
            self.p50_total_secs,
            self.p99_total_secs,
            self.p50_queue_secs,
            self.p99_queue_secs,
            s.peak_queue_depth,
            s.shrunk_admissions,
            s.queued_ever,
            s.cache.plan_hits,
            s.cache.plan_misses,
            s.cache.plan_hit_rate() * 100.0,
            s.cache.plan_evictions,
            s.cache.probe_hits,
            s.cache.probe_misses,
            s.peak_reserved_bytes,
            s.budget_bytes,
        )
    }
}

/// splitmix64 — the deterministic spec picker's stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Percentile by nearest-rank over an already-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drive `cfg.jobs` submissions drawn from `specs` against `server` and
/// reduce the reports.
///
/// Specs are drawn uniformly (seeded) from the pool, so a pool with
/// repeated shapes exercises the plan cache exactly in proportion to its
/// repetition. Panics if the pool is empty.
pub fn run_loadgen(server: &JobServer, specs: &[JobSpec], cfg: &LoadgenConfig) -> LoadgenReport {
    assert!(!specs.is_empty(), "loadgen needs a non-empty spec pool");
    let mut rng = cfg.seed;
    let mut pick = || specs[(splitmix64(&mut rng) % specs.len() as u64) as usize].clone();
    let (tx, rx) = channel::<JobReport>();
    let start = Instant::now();
    let mut reports: Vec<JobReport> = Vec::with_capacity(cfg.jobs);

    match cfg.arrival {
        ArrivalProcess::Open { rate_hz } => {
            let gap = if rate_hz.is_finite() && rate_hz > 0.0 {
                Some(Duration::from_secs_f64(1.0 / rate_hz))
            } else {
                None
            };
            for i in 0..cfg.jobs {
                server.submit_with(pick(), tx.clone());
                if let Some(gap) = gap {
                    // Pace against the campaign clock, not per-submit
                    // sleeps, so slow submits don't drift the offered rate.
                    let next_at = start + gap * (i as u32 + 1);
                    let now = Instant::now();
                    if next_at > now {
                        std::thread::sleep(next_at - now);
                    }
                }
            }
            for _ in 0..cfg.jobs {
                reports.push(rx.recv().expect("server dropped a loadgen report"));
            }
        }
        ArrivalProcess::Closed { concurrency } => {
            let window = concurrency.max(1).min(cfg.jobs);
            let mut submitted = 0;
            while submitted < window {
                server.submit_with(pick(), tx.clone());
                submitted += 1;
            }
            while reports.len() < cfg.jobs {
                let report = rx.recv().expect("server dropped a loadgen report");
                reports.push(report);
                if submitted < cfg.jobs {
                    server.submit_with(pick(), tx.clone());
                    submitted += 1;
                }
            }
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();

    let mut totals: Vec<f64> = Vec::new();
    let mut queues: Vec<f64> = Vec::new();
    let mut completed = 0;
    let mut rejected = 0;
    for r in &reports {
        match &r.outcome {
            JobOutcome::Completed(_) => {
                completed += 1;
                totals.push(r.total_secs);
                queues.push(r.queue_secs);
            }
            JobOutcome::Rejected(_) => rejected += 1,
        }
    }
    totals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    queues.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    LoadgenReport {
        jobs: cfg.jobs,
        completed,
        rejected,
        wall_secs,
        throughput_jobs_per_sec: if wall_secs > 0.0 {
            completed as f64 / wall_secs
        } else {
            0.0
        },
        p50_total_secs: percentile(&totals, 0.50),
        p99_total_secs: percentile(&totals, 0.99),
        p50_queue_secs: percentile(&queues, 0.50),
        p99_queue_secs: percentile(&queues, 0.99),
        server: server.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 3.0); // round(1.5) = 2
        assert_eq!(percentile(&xs, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn spec_picker_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        let mut c = 43u64;
        assert_ne!(xs, (0..8).map(|_| splitmix64(&mut c)).collect::<Vec<_>>());
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let report = LoadgenReport {
            jobs: 10,
            completed: 9,
            rejected: 1,
            wall_secs: 1.0,
            throughput_jobs_per_sec: 9.0,
            p50_total_secs: 0.1,
            p99_total_secs: 0.2,
            p50_queue_secs: 0.0,
            p99_queue_secs: 0.05,
            server: ServerStats::default(),
        };
        let header_cols = LoadgenReport::csv_header().split(',').count();
        let row_cols = report.csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(report.to_table().contains("throughput"));
    }
}
