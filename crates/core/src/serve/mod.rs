//! SpGEMM as a service: a resident, multi-tenant job server.
//!
//! Everything below this module exists to answer one question the
//! single-shot harness cannot: *what happens when many multiplies share
//! one machine and one memory budget?* A long-lived [`JobServer`] accepts
//! multiply jobs — operand handles, semiring, per-job budget, priority,
//! optional queue deadline — and packs them onto the simulated cluster
//! concurrently, under three coordinated policies:
//!
//! * **Planning** ([`crate::planner`], memoized by [`cache`]) — every job
//!   is planned with the PR-4 planner: probe the operands' structure,
//!   predict every candidate grid, run the winner. A two-level cache
//!   makes repeat shapes cheap: a probe memo keyed by operand handles, and
//!   a plan cache keyed by the pair's [`crate::planner::StructuralSketch`]
//!   (plus `p` and budget), so structurally identical work skips probe
//!   *and* predict.
//! * **Admission control** ([`admission`]) — each job's Eq. 2 modeled
//!   peak, `p · (input + ⌈unmerged/b⌉)`, is reserved against a **global**
//!   budget for the job's lifetime. Oversubscription queues jobs
//!   (priority, then FIFO), *shrinks* them (raise `b` until the peak fits
//!   what's currently free), or rejects them outright when even maximum
//!   batching could never fit. The invariant — admitted peaks never sum
//!   past the budget — is enforced by assertion and pinned by a property
//!   test.
//! * **Load generation** ([`loadgen`]) — open- and closed-loop arrival
//!   against the server, reporting throughput, p50/p99 latency, queue
//!   depth, admission decisions and cache hit rates.
//!
//! See `DESIGN.md` §15 for the full architecture (job lifecycle, the
//! admission state machine, cache keying and eviction).

pub mod admission;
pub mod cache;
pub mod job;
pub mod loadgen;
pub mod server;

pub use admission::{AdmissionController, Decision, JobDemand};
pub use cache::{CacheStats, CachedPlan, PlanCache, PlanKey};
pub use job::{
    AdmitKind, CompletedJob, JobId, JobOutcome, JobReport, JobSemiring, JobSpec, OperandId,
    PlanSource, Priority, RejectReason,
};
pub use loadgen::{run_loadgen, ArrivalProcess, LoadgenConfig, LoadgenReport};
pub use server::{FamilyPolicy, JobServer, JobTicket, ServerConfig, ServerStats};
