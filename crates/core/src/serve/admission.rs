//! Admission control: the server's global memory budget as a hard
//! reservation ledger.
//!
//! Every admitted job reserves its modeled peak — the Eq. 2 / Alg. 3
//! arithmetic the planner already does per job, aggregated over the job's
//! ranks — for its whole lifetime, and the controller maintains the
//! central invariant the concurrency proptest pins:
//!
//! > **the sum of admitted jobs' modeled peaks never exceeds the global
//! > budget.**
//!
//! A job's modeled peak at batch count `b` is
//! `p · (input_bytes + ⌈unmerged_bytes / b⌉)`: the inputs are resident for
//! the whole multiply (irreducible), while column batching divides the
//! unmerged intermediate. That split is exactly what makes
//! *shrink-and-batch* possible — when a job's planned peak doesn't fit the
//! budget **currently** available, the controller can raise `b` until the
//! divisible term fits, admitting the job now at the price of extra
//! A-rebroadcasts instead of parking it behind the running set.
//!
//! [`AdmissionController::decide`] is pure (no reservation mutation), so
//! schedulers can probe alternatives; [`AdmissionController::admit`] is
//! the single mutation point and asserts the invariant on every call.

use super::job::JobId;
use std::collections::HashMap;

/// The memory shape of one job, as the planner modeled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobDemand {
    /// Ranks the job runs on (reservations are aggregate: per-process
    /// bytes × `p`).
    pub p: usize,
    /// Irreducible per-process bytes: the heaviest rank's resident inputs
    /// under the chosen placement.
    pub input_bytes_per_proc: usize,
    /// Batch-divisible per-process bytes: the heaviest rank's unmerged
    /// intermediate at `b = 1`.
    pub unmerged_bytes_per_proc: usize,
    /// The batch count the planner chose under the job's own budget.
    pub planned_batches: usize,
    /// Finest batching column granularity allows (`ncols(B)`).
    pub max_batches: usize,
}

impl JobDemand {
    /// Aggregate modeled peak at batch count `b` (Eq. 2 shape).
    pub fn bytes_at(&self, b: usize) -> usize {
        let b = b.max(1);
        self.p
            .saturating_mul(self.input_bytes_per_proc + self.unmerged_bytes_per_proc.div_ceil(b))
    }

    /// Aggregate peak at the planned batch count.
    pub fn planned_bytes(&self) -> usize {
        self.bytes_at(self.planned_batches)
    }

    /// Aggregate peak at the finest feasible batching — the least memory
    /// this job can ever run in.
    pub fn min_bytes(&self) -> usize {
        self.bytes_at(self.max_batches)
    }
}

/// One admission verdict ([`AdmissionController::decide`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Fits right now at the planned batch count: reserve `bytes`.
    Admit {
        /// Batch count to run with (the planned one).
        batches: usize,
        /// Aggregate bytes to reserve.
        bytes: usize,
    },
    /// Fits right now only after raising the batch count to `batches`
    /// (shrink-and-batch): reserve `bytes`.
    AdmitShrunk {
        /// Raised batch count that makes the peak fit what's available.
        batches: usize,
        /// Aggregate bytes to reserve.
        bytes: usize,
    },
    /// Feasible under the full budget, but not in what's currently
    /// available: park it and retry when a running job releases.
    Queue,
    /// Can never run here: even the finest batching exceeds the global
    /// budget.
    Reject {
        /// The job's minimum aggregate demand.
        min_bytes: usize,
    },
}

/// The reservation ledger.
#[derive(Debug)]
pub struct AdmissionController {
    budget_bytes: usize,
    reserved: usize,
    peak_reserved: usize,
    shrink: bool,
    ledger: HashMap<JobId, usize>,
}

impl AdmissionController {
    /// A controller over `budget_bytes` aggregate modeled bytes.
    /// `shrink` enables shrink-and-batch admission.
    pub fn new(budget_bytes: usize, shrink: bool) -> Self {
        AdmissionController {
            budget_bytes,
            reserved: 0,
            peak_reserved: 0,
            shrink,
            ledger: HashMap::new(),
        }
    }

    /// The global budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Bytes currently reserved by admitted jobs.
    pub fn reserved(&self) -> usize {
        self.reserved
    }

    /// High-water mark of [`AdmissionController::reserved`] — what the
    /// proptest compares against the budget.
    pub fn peak_reserved(&self) -> usize {
        self.peak_reserved
    }

    /// Bytes available for new admissions.
    pub fn available(&self) -> usize {
        self.budget_bytes - self.reserved
    }

    /// Jobs currently holding reservations.
    pub fn admitted_count(&self) -> usize {
        self.ledger.len()
    }

    /// Judge `demand` against the current reservation state. Pure: no
    /// reservation is taken until [`AdmissionController::admit`].
    pub fn decide(&self, demand: &JobDemand) -> Decision {
        let min_bytes = demand.min_bytes();
        if min_bytes > self.budget_bytes {
            return Decision::Reject { min_bytes };
        }
        let available = self.available();
        let planned = demand.planned_bytes();
        if planned <= available {
            return Decision::Admit {
                batches: demand.planned_batches,
                bytes: planned,
            };
        }
        if self.shrink {
            // Smallest b with p·(input + ⌈unmerged/b⌉) ≤ available:
            // closed form on the divisible term, then verify (ceil).
            let fixed = demand.p.saturating_mul(demand.input_bytes_per_proc);
            if available > fixed && demand.p > 0 {
                let room_per_proc = (available - fixed) / demand.p;
                if room_per_proc > 0 {
                    let b = demand
                        .unmerged_bytes_per_proc
                        .div_ceil(room_per_proc)
                        .max(demand.planned_batches);
                    if b <= demand.max_batches {
                        let bytes = demand.bytes_at(b);
                        if bytes <= available {
                            return Decision::AdmitShrunk { batches: b, bytes };
                        }
                    }
                }
            }
        }
        Decision::Queue
    }

    /// Reserve `bytes` for `id`. Panics if the reservation would breach
    /// the budget or the id already holds one — both are scheduler bugs,
    /// not runtime conditions.
    pub fn admit(&mut self, id: JobId, bytes: usize) {
        assert!(
            self.reserved + bytes <= self.budget_bytes,
            "admission would breach the global budget: reserved {} + job {} > {}",
            self.reserved,
            bytes,
            self.budget_bytes
        );
        let prev = self.ledger.insert(id, bytes);
        assert!(prev.is_none(), "job {id} admitted twice");
        self.reserved += bytes;
        self.peak_reserved = self.peak_reserved.max(self.reserved);
    }

    /// Release job `id`'s reservation, returning the freed bytes.
    pub fn release(&mut self, id: JobId) -> usize {
        let bytes = self
            .ledger
            .remove(&id)
            .unwrap_or_else(|| panic!("released job {id} holds no reservation"));
        self.reserved -= bytes;
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(p: usize, input: usize, unmerged: usize, planned: usize, maxb: usize) -> JobDemand {
        JobDemand {
            p,
            input_bytes_per_proc: input,
            unmerged_bytes_per_proc: unmerged,
            planned_batches: planned,
            max_batches: maxb,
        }
    }

    #[test]
    fn bytes_at_divides_only_the_intermediate() {
        let d = demand(4, 100, 1000, 1, 64);
        assert_eq!(d.bytes_at(1), 4 * 1100);
        assert_eq!(d.bytes_at(10), 4 * 200);
        assert_eq!(d.bytes_at(1000), 4 * 101);
        // b is clamped to ≥ 1 and the ceil never under-counts.
        assert_eq!(d.bytes_at(0), d.bytes_at(1));
        assert_eq!(demand(4, 100, 999, 1, 64).bytes_at(10), 4 * 200);
    }

    #[test]
    fn admit_then_queue_then_release_cycle() {
        let mut ac = AdmissionController::new(10_000, false);
        let d = demand(2, 500, 2000, 1, 8); // planned: 2·2500 = 5000
        match ac.decide(&d) {
            Decision::Admit { batches: 1, bytes } => ac.admit(1, bytes),
            other => panic!("{other:?}"),
        }
        assert_eq!(ac.reserved(), 5000);
        // Second identical job fits exactly.
        match ac.decide(&d) {
            Decision::Admit { bytes, .. } => ac.admit(2, bytes),
            other => panic!("{other:?}"),
        }
        // Third must queue (shrink disabled).
        assert_eq!(ac.decide(&d), Decision::Queue);
        assert_eq!(ac.release(1), 5000);
        assert!(matches!(ac.decide(&d), Decision::Admit { .. }));
        assert_eq!(ac.peak_reserved(), 10_000);
    }

    #[test]
    fn shrink_raises_batches_to_fit_what_is_left() {
        let mut ac = AdmissionController::new(10_000, true);
        ac.admit(1, 7000);
        // Planned peak 2·(500+2000) = 5000 > 3000 available; at b ≥ 2 the
        // peak is 2·(500+1000) = 3000 ≤ 3000.
        let d = demand(2, 500, 2000, 1, 64);
        match ac.decide(&d) {
            Decision::AdmitShrunk { batches, bytes } => {
                assert_eq!(batches, 2);
                assert_eq!(bytes, 3000);
                ac.admit(2, bytes);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(ac.available(), 0);
        // Nothing left at all: even one-column batches can't fit now.
        assert_eq!(ac.decide(&d), Decision::Queue);
    }

    #[test]
    fn shrink_respects_column_granularity() {
        let mut ac = AdmissionController::new(10_000, true);
        ac.admit(1, 8000);
        // Needs b ≥ 4 to fit 2000 available (fixed 2·500 = 1000, room
        // 500/proc, unmerged 2000/proc ⇒ b = 4), but only 3 columns exist.
        let d = demand(2, 500, 2000, 1, 3);
        assert_eq!(ac.decide(&d), Decision::Queue);
        // With enough columns the same job shrinks in.
        let d64 = demand(2, 500, 2000, 1, 64);
        assert!(matches!(ac.decide(&d64), Decision::AdmitShrunk { batches: 4, .. }));
    }

    #[test]
    fn never_fits_is_rejected_not_queued() {
        let ac = AdmissionController::new(1000, true);
        // Min demand: 2·(400 + ⌈1000/64⌉) = 832 ≤ 1000 → queueable...
        let ok = demand(2, 400, 1000, 1, 64);
        assert!(!matches!(ac.decide(&ok), Decision::Reject { .. }));
        // ...but inputs alone over budget can never run.
        let never = demand(2, 600, 1000, 1, 64);
        match ac.decide(&never) {
            Decision::Reject { min_bytes } => assert_eq!(min_bytes, 2 * 616),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "breach the global budget")]
    fn over_admission_panics() {
        let mut ac = AdmissionController::new(100, false);
        ac.admit(1, 60);
        ac.admit(2, 60);
    }
}
