//! One-call drivers: spawn a virtual cluster, scatter, multiply, gather.
//!
//! Tests, examples and the bench harnesses all need the same choreography:
//! distribute two global matrices per Fig. 1, run BatchedSUMMA3D, collect
//! per-rank step breakdowns and (optionally) the assembled product. This
//! module packages that as [`run_spgemm`].

use crate::backend::BackendKind;
use crate::batched::{batched_summa3d, BatchConfig, BatchingStrategy};
use crate::exchange::ExchangeMode;
use crate::family15::{spmm_15d, AlgorithmFamily};
use crate::summa2d::{MergeSchedule, OverlapMode};
use crate::dist::{gather_pieces, scatter, transpose_to_bstyle, DistKind};
use crate::kernels::KernelStrategy;
use crate::memory::MemoryBudget;
use crate::model::validate_grid;
use crate::planner::{self, PlanReport, PlannerConfig};
use crate::symbolic::SymbolicOutcome;
use crate::{CoreError, Result};
use spgemm_simgrid::{
    max_breakdown, run_ranks_checked, run_ranks_seeded, CheckMode, Grid3D, Machine, StepBreakdown,
};
use spgemm_sparse::par::RangeBalance;
use spgemm_sparse::{CscMatrix, DenseBlock, Semiring, WorkStats};
use std::sync::Arc;

/// How the grid layer count `l` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerChoice {
    /// Use exactly this layer count (validated: `l | p`, `p/l` square).
    Fixed(usize),
    /// Let the planner pick: probe the operands, predict every valid `l`
    /// under the run's machine/budget/kernels/overlap, run the winner.
    /// The ranked [`PlanReport`] is recorded in [`RunOutput::plan`].
    Auto,
}

/// Full configuration of a simulated distributed SpGEMM run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Number of simulated processes.
    pub p: usize,
    /// Grid layer choice (`Fixed(1)` = plain 2D SUMMA behaviour).
    pub layers: LayerChoice,
    /// Machine cost model.
    pub machine: Machine,
    /// Local kernel generation.
    pub kernels: KernelStrategy,
    /// Batch partitioning scheme.
    pub batching: BatchingStrategy,
    /// Aggregate memory budget (drives the symbolic batch count).
    pub budget: MemoryBudget,
    /// Force a batch count, skipping the symbolic step (Fig. 4 sweeps).
    pub forced_batches: Option<usize>,
    /// Discard each batch after formation instead of gathering the full
    /// product (the memory-constrained application pattern). The returned
    /// `c` is `None`.
    pub discard_output: bool,
    /// Record per-rank step timelines for Chrome-trace export
    /// (`RunOutput::traces`).
    pub trace: bool,
    /// When Merge-Layer runs (Sec. III-A ablation; the paper merges after
    /// all stages).
    pub merge_schedule: MergeSchedule,
    /// Blocking (paper-faithful) or overlapped (pipelined nonblocking
    /// broadcasts) communication.
    pub overlap: OverlapMode,
    /// How stage operands move: dense broadcasts (paper-faithful) or
    /// sparsity-aware point-to-point fetch ([`crate::exchange`]).
    pub exchange: ExchangeMode,
    /// Collective-protocol verification ("MPI lint"). Defaults to
    /// [`CheckMode::default_mode`]: on in debug builds and whenever
    /// `SPGEMM_CHECK` enables it, off in release runs.
    pub check: CheckMode,
    /// Kernel execution backend: modeled clock (`Simgrid`) or real
    /// multithreaded kernels with measured times (`Native`). Defaults to
    /// [`BackendKind::default_kind`]: `Simgrid` unless `SPGEMM_BACKEND`
    /// selects otherwise.
    pub backend: BackendKind,
    /// Schedule-perturbation seed: when set, every rank injects
    /// deterministic seed-derived scheduler jitter at communication
    /// points, permuting thread wakeup order at rendezvous. Results must
    /// be bit-identical under any seed. Defaults to the
    /// `SPGEMM_PERTURB_SEED` environment variable (none if unset).
    pub perturb: Option<u64>,
    /// Which algorithm family runs the multiply. The SUMMA families use
    /// the batched 3D pipeline (`Summa2d` pins `l = 1`); the 1.5D
    /// families ([`AlgorithmFamily::ColA15`] /
    /// [`AlgorithmFamily::InnerAbc15`]) run the sparse-dense SpMM drivers
    /// of [`crate::family15`] (a sparse `B` is densified first).
    pub algorithm: AlgorithmFamily,
    /// Job id label for multi-tenant packing ([`crate::serve`]): when set,
    /// the simulated rank threads are named `job-J-rank-I` and failure
    /// reports lead with the job id, so concurrent worlds in one server
    /// process stay tellable apart. `None` for standalone runs.
    pub job: Option<u64>,
}

impl RunConfig {
    /// Defaults: KNL cost model, new kernels, block-cyclic batching,
    /// unlimited memory, symbolic batch count, keep output.
    pub fn new(p: usize, layers: usize) -> Self {
        RunConfig {
            p,
            layers: LayerChoice::Fixed(layers),
            machine: Machine::knl(),
            kernels: KernelStrategy::New,
            batching: BatchingStrategy::BlockCyclic,
            budget: MemoryBudget::unlimited(),
            forced_batches: None,
            discard_output: false,
            trace: false,
            merge_schedule: MergeSchedule::AfterAllStages,
            overlap: OverlapMode::Blocking,
            exchange: ExchangeMode::DenseBcast,
            check: CheckMode::default_mode(),
            backend: BackendKind::default_kind(),
            algorithm: AlgorithmFamily::Summa3dBatched,
            perturb: None,
            job: None,
        }
    }

    /// Defaults with planner-chosen layers ([`LayerChoice::Auto`]).
    pub fn auto(p: usize) -> Self {
        let mut cfg = RunConfig::new(p, 1);
        cfg.layers = LayerChoice::Auto;
        cfg
    }
}

/// Resolve [`RunConfig::layers`] to a concrete, validated layer count.
///
/// `Fixed(l)` is validated against `p` (rejecting the degenerate grids
/// `Grid3D::new` would otherwise panic on); `Auto` runs the planner on
/// the operands and returns the winner plus the full ranked report.
fn resolve_layers<T: Copy, U: Copy>(
    cfg: &RunConfig,
    a: &CscMatrix<T>,
    b: &CscMatrix<U>,
) -> Result<(usize, Option<PlanReport>)> {
    if cfg.algorithm == AlgorithmFamily::Summa2d {
        // 2D SUMMA is the 3D pipeline pinned to one layer.
        if let LayerChoice::Fixed(l) = cfg.layers {
            if l != 1 {
                return Err(CoreError::Config(format!(
                    "algorithm summa2d pins l=1 but l={l} was fixed"
                )));
            }
        }
        validate_grid(cfg.p, 1)?;
        return Ok((1, None));
    }
    match cfg.layers {
        LayerChoice::Fixed(l) => {
            validate_grid(cfg.p, l)?;
            Ok((l, None))
        }
        LayerChoice::Auto => {
            let pcfg = PlannerConfig::for_run(cfg);
            let report = planner::plan(cfg.p, a, b, &pcfg)?;
            let layers = report
                .winner()
                .map(|w| w.candidate.layers)
                .ok_or_else(|| {
                    CoreError::Config(format!(
                        "auto layer choice: no feasible configuration for p={} under the \
                         memory budget",
                        cfg.p
                    ))
                })?;
            Ok((layers, Some(report)))
        }
    }
}

/// Everything a simulated run reports.
#[derive(Debug)]
pub struct RunOutput<T: Copy> {
    /// The assembled product on the (simulated) root, unless
    /// `discard_output` was set.
    pub c: Option<CscMatrix<T>>,
    /// Per-rank modeled step breakdowns, rank order.
    pub per_rank: Vec<StepBreakdown>,
    /// Critical-path (max over ranks) breakdown — what the paper plots.
    pub max: StepBreakdown,
    /// Number of batches executed.
    pub nbatches: usize,
    /// The layer count actually used (resolved from [`LayerChoice`]).
    pub layers: usize,
    /// The planner's ranked report when layers were chosen automatically
    /// ([`LayerChoice::Auto`]); `None` for fixed layer counts.
    pub plan: Option<PlanReport>,
    /// Symbolic outcome (absent when the batch count was forced).
    pub symbolic: Option<SymbolicOutcome>,
    /// Per-rank peak modeled bytes.
    pub peak_bytes: Vec<usize>,
    /// Per-rank step timelines when `RunConfig::trace` was set; render
    /// with [`spgemm_simgrid::chrome_trace_json`].
    pub traces: Option<Vec<Vec<spgemm_simgrid::TraceEvent>>>,
    /// Kernel-side counters aggregated over all ranks: flops/nnz/allocs/
    /// memcpy bytes are summed, peak scratch bytes is the max over ranks
    /// (each rank owns one workspace).
    pub kernel_stats: WorkStats,
    /// Per-thread load-balance record aggregated over all ranks; only
    /// populated by the Native backend (serial/Simgrid runs leave it at
    /// the zero default, whose `imbalance()` reports 0.0).
    pub load_balance: RangeBalance,
}

/// Spawn the simulated cluster honouring [`RunConfig::perturb`]: an
/// explicit seed wins; `None` falls back to [`run_ranks_checked`], whose
/// default is the `SPGEMM_PERTURB_SEED` environment variable.
fn run_cluster<R, F>(cfg: &RunConfig, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut spgemm_simgrid::Rank) -> R + Send + Sync,
{
    match (cfg.job, cfg.perturb) {
        (Some(job), seed) => {
            spgemm_simgrid::run_ranks_for_job(cfg.p, cfg.machine, cfg.check, seed, job, f)
        }
        (None, Some(seed)) => run_ranks_seeded(cfg.p, cfg.machine, cfg.check, Some(seed), f),
        (None, None) => run_ranks_checked(cfg.p, cfg.machine, cfg.check, f),
    }
}

struct PerRank<T: Copy> {
    breakdown: StepBreakdown,
    peak: usize,
    nbatches: usize,
    symbolic: Option<SymbolicOutcome>,
    c: Option<CscMatrix<T>>,
    events: Option<Vec<spgemm_simgrid::TraceEvent>>,
    kernel_stats: WorkStats,
    load_balance: RangeBalance,
}

/// Multiply `a · b` on a simulated `p`-rank cluster per `cfg`.
///
/// The global inputs live on the simulated root and are distributed per
/// the paper's Fig. 1 (A-style / B-style). Returns the gathered product
/// and the modeled per-step timing that the bench harnesses report.
pub fn run_spgemm<S: Semiring>(
    cfg: &RunConfig,
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
) -> Result<RunOutput<S::T>> {
    if a.ncols() != b.nrows() {
        return Err(CoreError::Config(format!(
            "inner dimensions differ: A is {}x{}, B is {}x{}",
            a.nrows(),
            a.ncols(),
            b.nrows(),
            b.ncols()
        )));
    }
    if cfg.algorithm.is_15d() {
        // The 1.5D families are sparse-dense algorithms: an honestly
        // densified B (zero-filled, `d = ncols(B)` stripes) runs through
        // the SpMM drivers and the product is re-sparsified. This is the
        // right call exactly when B is dense-ish — the planner's family
        // dimension prices the densification in.
        let bd = DenseBlock::from_csc::<S>(b);
        let out = run_spmm::<S>(cfg, a, &bd)?;
        return Ok(RunOutput {
            c: if cfg.discard_output {
                None
            } else {
                out.c.as_ref().map(|d| d.to_csc::<S>())
            },
            per_rank: out.per_rank,
            max: out.max,
            nbatches: 1,
            layers: 1,
            plan: out.plan,
            symbolic: None,
            peak_bytes: out.peak_bytes,
            traces: out.traces,
            kernel_stats: out.kernel_stats,
            load_balance: RangeBalance::default(),
        });
    }
    let (layers, plan) = resolve_layers(cfg, a, b)?;
    let a_arc = Arc::new(a.clone());
    let b_arc = Arc::new(b.clone());
    let (m, n) = (a.nrows(), b.ncols());
    let cfg_copy = *cfg;

    let results: Vec<Result<PerRank<S::T>>> = run_cluster(cfg, move |rank| {
        if cfg_copy.trace {
            rank.clock_mut().enable_tracing();
        }
        let grid = Grid3D::new(rank, layers);
        let da = scatter(
            rank,
            &grid,
            DistKind::AStyle,
            (rank.rank() == 0).then(|| Arc::clone(&a_arc)),
        );
        let db = scatter(
            rank,
            &grid,
            DistKind::BStyle,
            (rank.rank() == 0).then(|| Arc::clone(&b_arc)),
        );
        let bcfg = BatchConfig {
            kernels: cfg_copy.kernels,
            batching: cfg_copy.batching,
            budget: cfg_copy.budget,
            forced_batches: cfg_copy.forced_batches,
            merge_schedule: cfg_copy.merge_schedule,
            overlap: cfg_copy.overlap,
            exchange: cfg_copy.exchange,
            backend: cfg_copy.backend,
            algorithm: cfg_copy.algorithm,
        };
        let discard = cfg_copy.discard_output;
        let result = batched_summa3d::<S>(rank, &grid, &da, &db, &bcfg, |_rank, out| {
            if discard {
                None
            } else {
                Some(out.piece)
            }
        })?;
        let c = if discard {
            None
        } else {
            gather_pieces(rank, &grid.world, result.pieces, m, n)
        };
        Ok(PerRank {
            breakdown: *rank.clock().breakdown(),
            peak: result.peak_bytes,
            nbatches: result.nbatches,
            symbolic: result.symbolic,
            c,
            events: rank.clock().events().map(|e| e.to_vec()),
            kernel_stats: result.kernel_stats,
            load_balance: result.load_balance,
        })
    });

    collect_outputs(cfg, layers, plan, results)
}

/// Everything a simulated sparse-dense (SpMM) run reports.
#[derive(Debug)]
pub struct SpmmOutput<T: Copy> {
    /// The assembled dense `m × d` product on the simulated root, unless
    /// `discard_output` was set.
    pub c: Option<DenseBlock<T>>,
    /// Per-rank modeled step breakdowns, rank order.
    pub per_rank: Vec<StepBreakdown>,
    /// Critical-path (max over ranks) breakdown.
    pub max: StepBreakdown,
    /// The family that ran.
    pub algorithm: AlgorithmFamily,
    /// Per-rank peak modeled bytes (includes the replicated `A` blocks).
    pub peak_bytes: Vec<usize>,
    /// Kernel counters aggregated over all ranks.
    pub kernel_stats: WorkStats,
    /// The planner's ranked report when one was consulted; `None` for
    /// directly pinned families.
    pub plan: Option<PlanReport>,
    /// Per-rank step timelines when `RunConfig::trace` was set.
    pub traces: Option<Vec<Vec<spgemm_simgrid::TraceEvent>>>,
}

/// Multiply sparse `a` by **dense** `b` on a simulated `p`-rank cluster.
///
/// The 1.5D families run their native SpMM drivers
/// ([`crate::family15::spmm_15d`]); the SUMMA families sparsify `b`
/// (dropping semiring zeros), run the standard pipeline, and densify the
/// product — so every family answers the same question and the outputs
/// are comparable bit-for-bit under exact semirings.
///
/// The 1.5D path needs no batching: `C` is born column-striped across
/// ranks and stationary, which is the memory-minimal layout the batched
/// pipeline works to approximate. The memory budget is still enforced —
/// a rank whose resident set (replicated `A` block, in-flight shift
/// buffer, dense stripes, reduction buffers) exceeds the per-process
/// budget fails admission with [`CoreError::InputsExceedMemory`].
pub fn run_spmm<S: Semiring>(
    cfg: &RunConfig,
    a: &CscMatrix<S::T>,
    b: &DenseBlock<S::T>,
) -> Result<SpmmOutput<S::T>> {
    if a.ncols() != b.nrows() {
        return Err(CoreError::Config(format!(
            "inner dimensions differ: A is {}x{}, dense B is {}x{}",
            a.nrows(),
            a.ncols(),
            b.nrows(),
            b.ncols()
        )));
    }
    if !cfg.algorithm.is_15d() {
        // SUMMA families: sparsify B, run the standard pipeline, densify C.
        let bs = b.to_csc::<S>();
        let out = run_spgemm::<S>(cfg, a, &bs)?;
        return Ok(SpmmOutput {
            c: out.c.as_ref().map(|c| {
                let mut d = DenseBlock::new_fill(a.nrows(), b.ncols(), S::zero());
                for (i, j, v) in c.iter() {
                    d.set(i as usize, j, v);
                }
                d
            }),
            per_rank: out.per_rank,
            max: out.max,
            algorithm: cfg.algorithm,
            peak_bytes: out.peak_bytes,
            kernel_stats: out.kernel_stats,
            plan: out.plan,
            traces: out.traces,
        });
    }
    cfg.algorithm.validate(cfg.p)?;
    let a_arc = Arc::new(a.clone());
    let b_arc = Arc::new(b.clone());
    let cfg_copy = *cfg;

    struct SpmmPerRank<T: Copy> {
        breakdown: StepBreakdown,
        peak: usize,
        c: Option<DenseBlock<T>>,
        kernel_stats: WorkStats,
        events: Option<Vec<spgemm_simgrid::TraceEvent>>,
    }

    let results: Vec<Result<SpmmPerRank<S::T>>> = run_cluster(cfg, move |rank| {
        if cfg_copy.trace {
            rank.clock_mut().enable_tracing();
        }
        let backend = cfg_copy.backend.to_backend();
        let out = spmm_15d::<S>(
            rank,
            cfg_copy.algorithm,
            (rank.rank() == 0).then(|| Arc::clone(&a_arc)),
            (rank.rank() == 0).then(|| Arc::clone(&b_arc)),
            &*backend,
            cfg_copy.discard_output,
        )?;
        Ok(SpmmPerRank {
            breakdown: *rank.clock().breakdown(),
            peak: out.peak_bytes,
            c: out.gathered,
            kernel_stats: out.kernel_stats,
            events: rank.clock().events().map(|e| e.to_vec()),
        })
    });

    let mut per_rank = Vec::with_capacity(cfg.p);
    let mut peaks = Vec::with_capacity(cfg.p);
    let mut c = None;
    let mut kernel_stats = WorkStats::default();
    let mut traces = cfg.trace.then(Vec::new);
    for (i, r) in results.into_iter().enumerate() {
        let r = r?;
        per_rank.push(r.breakdown);
        peaks.push(r.peak);
        kernel_stats.merge(r.kernel_stats);
        if i == 0 {
            c = r.c;
        }
        if let (Some(ts), Some(ev)) = (traces.as_mut(), r.events) {
            ts.push(ev);
        }
    }
    if !cfg.budget.is_unlimited() {
        let per_proc = cfg.budget.per_process(cfg.p);
        if let Some((rank_id, &peak)) =
            per_rank.iter().enumerate().map(|(i, _)| (i, &peaks[i])).max_by_key(|&(_, &pk)| pk)
        {
            if peak > per_proc {
                let _ = rank_id;
                return Err(CoreError::InputsExceedMemory {
                    needed_bytes: peak,
                    budget_bytes: per_proc,
                });
            }
        }
    }
    let max = max_breakdown(&per_rank);
    Ok(SpmmOutput {
        c,
        per_rank,
        max,
        algorithm: cfg.algorithm,
        peak_bytes: peaks,
        kernel_stats,
        plan: None,
        traces,
    })
}

/// Compute `A·Aᵀ` on the simulated cluster: `A` is scattered once and
/// transposed **in place on the grid** ([`transpose_to_bstyle`]) — the
/// global transpose never exists, matching how `A·Aᵀ` pipelines (BELLA,
/// Jaccard, hypergraph coarsening) run at scale.
pub fn run_spgemm_aat<S: Semiring>(
    cfg: &RunConfig,
    a: &CscMatrix<S::T>,
) -> Result<RunOutput<S::T>> {
    // Auto layers need the global Bᵀ structure for planning; a fixed
    // layer count never materializes the transpose.
    let (layers, plan) = match cfg.layers {
        LayerChoice::Fixed(_) => resolve_layers(cfg, a, a)?,
        LayerChoice::Auto => {
            let at = spgemm_sparse::ops::transpose(a);
            resolve_layers(cfg, a, &at)?
        }
    };
    let a_arc = Arc::new(a.clone());
    let (m, n) = (a.nrows(), a.nrows());
    let cfg_copy = *cfg;

    let results: Vec<Result<PerRank<S::T>>> = run_cluster(cfg, move |rank| {
        if cfg_copy.trace {
            rank.clock_mut().enable_tracing();
        }
        let grid = Grid3D::new(rank, layers);
        let da = scatter(
            rank,
            &grid,
            DistKind::AStyle,
            (rank.rank() == 0).then(|| Arc::clone(&a_arc)),
        );
        let db = transpose_to_bstyle(rank, &grid, &da);
        let bcfg = BatchConfig {
            kernels: cfg_copy.kernels,
            batching: cfg_copy.batching,
            budget: cfg_copy.budget,
            forced_batches: cfg_copy.forced_batches,
            merge_schedule: cfg_copy.merge_schedule,
            overlap: cfg_copy.overlap,
            exchange: cfg_copy.exchange,
            backend: cfg_copy.backend,
            algorithm: cfg_copy.algorithm,
        };
        let discard = cfg_copy.discard_output;
        let result = batched_summa3d::<S>(rank, &grid, &da, &db, &bcfg, |_rank, out| {
            if discard {
                None
            } else {
                Some(out.piece)
            }
        })?;
        let c = if discard {
            None
        } else {
            gather_pieces(rank, &grid.world, result.pieces, m, n)
        };
        Ok(PerRank {
            breakdown: *rank.clock().breakdown(),
            peak: result.peak_bytes,
            nbatches: result.nbatches,
            symbolic: result.symbolic,
            c,
            events: rank.clock().events().map(|e| e.to_vec()),
            kernel_stats: result.kernel_stats,
            load_balance: result.load_balance,
        })
    });

    collect_outputs(cfg, layers, plan, results)
}

/// Multiply with **row-wise batching**: batches select rows of `C` (and
/// of `A`) instead of columns. The paper (Sec. IV-B) notes column-wise
/// batching is expensive when `nnz(A) ≫ nnz(B)` — `A` is rebroadcast per
/// batch — "however, if inputs are square matrices, we can easily use
/// row-by-row batching on B using the same algorithm". Implemented via
/// the transpose identity `C = (Bᵀ·Aᵀ)ᵀ`: the heavy operand moves to the
/// B slot, whose bandwidth cost is batch-count-independent (Table II).
pub fn run_spgemm_row_batched<S: Semiring>(
    cfg: &RunConfig,
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
) -> Result<RunOutput<S::T>> {
    let at = spgemm_sparse::ops::transpose(a);
    let bt = spgemm_sparse::ops::transpose(b);
    let mut out = run_spgemm::<S>(cfg, &bt, &at)?;
    out.c = out.c.map(|ct| spgemm_sparse::ops::transpose(&ct));
    Ok(out)
}

fn collect_outputs<T: Copy>(
    cfg: &RunConfig,
    layers: usize,
    plan: Option<PlanReport>,
    results: Vec<Result<PerRank<T>>>,
) -> Result<RunOutput<T>> {
    let mut per_rank = Vec::with_capacity(cfg.p);
    let mut peaks = Vec::with_capacity(cfg.p);
    let mut c = None;
    let mut nbatches = 0;
    let mut symbolic = None;
    let mut traces = cfg.trace.then(Vec::new);
    let mut kernel_stats = WorkStats::default();
    let mut load_balance = RangeBalance::default();
    for (i, r) in results.into_iter().enumerate() {
        let r = r?;
        per_rank.push(r.breakdown);
        peaks.push(r.peak);
        nbatches = r.nbatches;
        kernel_stats.merge(r.kernel_stats);
        load_balance.merge(r.load_balance);
        if i == 0 {
            symbolic = r.symbolic;
            c = r.c;
        }
        if let (Some(ts), Some(ev)) = (traces.as_mut(), r.events) {
            ts.push(ev);
        }
    }
    let max = max_breakdown(&per_rank);
    Ok(RunOutput {
        c,
        per_rank,
        max,
        nbatches,
        layers,
        plan,
        symbolic,
        peak_bytes: peaks,
        traces,
        kernel_stats,
        load_balance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_simgrid::Step;
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::{PlusTimesF64, PlusTimesU64};
    use spgemm_sparse::spgemm::spgemm_spa;

    #[test]
    fn tracing_produces_per_rank_timelines() {
        let a = er_random::<PlusTimesF64>(32, 32, 4, 99);
        let mut cfg = RunConfig::new(4, 1);
        cfg.trace = true;
        cfg.forced_batches = Some(2);
        let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &a).unwrap();
        let traces = out.traces.expect("traces requested");
        assert_eq!(traces.len(), 4);
        for (rank, t) in traces.iter().enumerate() {
            assert!(!t.is_empty(), "rank {rank} has no events");
            // Events are chronological and non-overlapping per rank.
            for w in t.windows(2) {
                assert!(w[0].end <= w[1].start + 1e-12);
            }
        }
        let json = spgemm_simgrid::chrome_trace_json(&traces);
        assert!(json.contains("A-Bcast"));
        // Untraced runs return None.
        let cfg2 = RunConfig::new(4, 1);
        assert!(run_spgemm::<PlusTimesF64>(&cfg2, &a, &a).unwrap().traces.is_none());
    }

    #[test]
    fn row_batching_equals_column_batching() {
        // The Sec. IV-B identity: row batches of C via (Bᵀ·Aᵀ)ᵀ.
        let a = er_random::<PlusTimesU64>(40, 40, 8, 151).map(|_| 1u64); // heavy A
        let b = er_random::<PlusTimesU64>(40, 40, 2, 152).map(|_| 1u64); // light B
        let mut cfg = RunConfig::new(16, 4);
        cfg.forced_batches = Some(4);
        let col = run_spgemm::<PlusTimesU64>(&cfg, &a, &b).unwrap();
        let row = run_spgemm_row_batched::<PlusTimesU64>(&cfg, &a, &b).unwrap();
        assert!(row.c.unwrap().eq_modulo_order(&col.c.unwrap()));
        // The point of row batching: the heavy operand (A) sits in the
        // B slot, so its total broadcast volume is b-independent, while
        // column batching rebroadcasts it every batch.
        let rebroadcast_col = col.max.secs_of(Step::ABcast);
        let rebroadcast_row = row.max.secs_of(Step::ABcast);
        assert!(
            rebroadcast_row < rebroadcast_col,
            "row batching should stop rebroadcasting the heavy operand:              {rebroadcast_row} vs {rebroadcast_col}"
        );
    }

    #[test]
    fn batched_equals_serial_across_configs() {
        let a = er_random::<PlusTimesU64>(60, 60, 5, 51).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(60, 60, 5, 52).map(|_| 1u64);
        let (reference, _) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
        for (p, l) in [(4usize, 1usize), (8, 2), (16, 4)] {
            for nb in [1usize, 2, 5] {
                for batching in [BatchingStrategy::BlockCyclic, BatchingStrategy::Block] {
                    let mut cfg = RunConfig::new(p, l);
                    cfg.forced_batches = Some(nb);
                    cfg.batching = batching;
                    let out = run_spgemm::<PlusTimesU64>(&cfg, &a, &b).unwrap();
                    assert_eq!(out.nbatches, nb);
                    assert!(
                        out.c.as_ref().unwrap().eq_modulo_order(&reference),
                        "p={p} l={l} b={nb} {batching:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn symbolic_driven_batching_stays_within_budget() {
        let a = er_random::<PlusTimesF64>(64, 64, 8, 53);
        let b = er_random::<PlusTimesF64>(64, 64, 8, 54);
        let p = 4;
        // Budget: inputs + a fraction of the intermediate size.
        let inputs_bytes = (a.nnz() + b.nnz()) * 24;
        let mut cfg = RunConfig::new(p, 1);
        cfg.budget = MemoryBudget::new(inputs_bytes * 4);
        cfg.discard_output = true;
        let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &b).unwrap();
        assert!(out.nbatches > 1, "tight budget must force batching");
        let per_proc = cfg.budget.per_process(p);
        for (rank, &peak) in out.peak_bytes.iter().enumerate() {
            assert!(
                peak <= per_proc,
                "rank {rank} peaked at {peak} bytes over per-process budget {per_proc} \
                 (b = {})",
                out.nbatches
            );
        }
    }

    #[test]
    fn discard_output_returns_no_c() {
        let a = er_random::<PlusTimesF64>(32, 32, 3, 55);
        let b = er_random::<PlusTimesF64>(32, 32, 3, 56);
        let mut cfg = RunConfig::new(4, 1);
        cfg.discard_output = true;
        cfg.forced_batches = Some(2);
        let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &b).unwrap();
        assert!(out.c.is_none());
    }

    #[test]
    fn dimension_mismatch_is_config_error() {
        let a = er_random::<PlusTimesF64>(10, 12, 2, 57);
        let b = er_random::<PlusTimesF64>(10, 10, 2, 58);
        let cfg = RunConfig::new(4, 1);
        assert!(matches!(
            run_spgemm::<PlusTimesF64>(&cfg, &a, &b),
            Err(CoreError::Config(_))
        ));
    }

    #[test]
    fn fixed_degenerate_grid_is_config_error_naming_pair() {
        let a = er_random::<PlusTimesF64>(16, 16, 2, 77);
        for l in [3usize, 2] {
            let cfg = RunConfig::new(16, l); // 3 ∤ 16; 16/2 = 8 not square
            let err = run_spgemm::<PlusTimesF64>(&cfg, &a, &a).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("p=16") && msg.contains(&format!("l={l}")), "{msg}");
        }
    }

    #[test]
    fn auto_layers_runs_winner_and_records_plan() {
        let a = er_random::<PlusTimesF64>(48, 48, 4, 78);
        let b = er_random::<PlusTimesF64>(48, 48, 4, 79);
        let cfg = RunConfig::auto(16);
        let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &b).unwrap();
        let plan = out.plan.as_ref().expect("auto records the plan");
        let winner = plan.winner().expect("unlimited budget is feasible");
        assert_eq!(out.layers, winner.candidate.layers);
        assert!([1usize, 4, 16].contains(&out.layers));
        // Result matches a fixed-layer run.
        let fixed = run_spgemm::<PlusTimesF64>(&RunConfig::new(16, out.layers), &a, &b).unwrap();
        assert!(out.c.unwrap().eq_modulo_order(&fixed.c.unwrap()));
        assert!(fixed.plan.is_none());
        // A·Aᵀ auto planning works too (plans on the on-the-fly transpose).
        let aat = run_spgemm_aat::<PlusTimesF64>(&RunConfig::auto(16), &a).unwrap();
        assert!(aat.plan.is_some());
    }

    #[test]
    fn forced_zero_batches_rejected() {
        let a = er_random::<PlusTimesF64>(16, 16, 2, 59);
        let mut cfg = RunConfig::new(4, 1);
        cfg.forced_batches = Some(0);
        assert!(matches!(
            run_spgemm::<PlusTimesF64>(&cfg, &a, &a),
            Err(CoreError::Config(_))
        ));
    }

    #[test]
    fn more_batches_increase_abcast_not_bbcast() {
        // The Fig. 4 signature: A-Bcast grows ~linearly with b; B-Bcast's
        // bandwidth term is b-independent. The claim concerns the
        // bandwidth-dominated regime of the paper's machines, so use a
        // machine with negligible latency (toy-scale payloads would
        // otherwise be latency-bound and both broadcasts would scale with
        // b's round count).
        let a = er_random::<PlusTimesF64>(96, 96, 8, 60);
        let b = er_random::<PlusTimesF64>(96, 96, 8, 61);
        let run = |nb: usize| {
            let mut cfg = RunConfig::new(16, 4);
            cfg.machine.alpha = 1e-12;
            cfg.forced_batches = Some(nb);
            run_spgemm::<PlusTimesF64>(&cfg, &a, &b).unwrap().max
        };
        let b1 = run(1);
        let b8 = run(8);
        assert!(
            b8.secs_of(Step::ABcast) > 4.0 * b1.secs_of(Step::ABcast),
            "A-Bcast should grow ~8x: {} -> {}",
            b1.secs_of(Step::ABcast),
            b8.secs_of(Step::ABcast)
        );
        let bb_ratio = b8.secs_of(Step::BBcast) / b1.secs_of(Step::BBcast);
        assert!(
            bb_ratio < 3.0,
            "B-Bcast should grow only via latency, got ratio {bb_ratio}"
        );
    }
}
