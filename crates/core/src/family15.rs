//! Algorithm-family seam and the 1.5D communication-avoiding drivers.
//!
//! The pipeline grew up around one algorithm — batched 3D SUMMA — but the
//! paper's method is one point in a family of communication-avoiding
//! algorithms. [`AlgorithmFamily`] names the members this repo implements
//! and is threaded through `RunConfig`/`BatchConfig`/planner/CLI exactly
//! as `ExchangeMode` is:
//!
//! * [`AlgorithmFamily::Summa2d`] — 3D SUMMA pinned to one layer (plain
//!   2D sparse SUMMA); the conformance baseline for the new families.
//! * [`AlgorithmFamily::Summa3dBatched`] — the paper's Alg. 4 pipeline.
//! * [`AlgorithmFamily::ColA15`] — 1.5D **ColA** sparse-dense SpMM with
//!   replication factor `c`: dense `B` and `C` are column-striped across
//!   all `p` ranks and stationary; sparse `A` is cut into `t = p/c`
//!   inner-dimension blocks and **rotated** around `c` independent rings
//!   of length `t` ([`cola_ring`]). Each rank performs `t` local
//!   SpMM-accumulates; replication buys *latency* (`p/c − 1` shift rounds
//!   instead of `p − 1`) while the per-rank `A` bandwidth stays ≈
//!   `nnz(A)·(1 − c/p)`. No dense element ever moves.
//! * [`AlgorithmFamily::InnerAbc15`] — 1.5D **InnerABC**: `B`/`C` are
//!   column-striped across `t = p/c` stripes and *replicated* on `c`
//!   layers; layer `ℓ` owns the `A` blocks `{k : k ≡ ℓ (mod c)}`, so each
//!   rank shifts over only `t/c = p/c²` blocks ([`iabc_subring`]) —
//!   replication buys *bandwidth* (≈ `nnz(A)/c²` shifted per rank) at the
//!   price of a partial-`C` reduction across each stripe's replication
//!   team ([`iabc_team`]). Requires `c² | p`; `c = 1` degenerates to ColA.
//!
//! The ring/team membership functions are **pure** (no `Rank`), shared
//! verbatim by the drivers here and the schedule auditor's symbolic
//! replay — the same seam `Grid3D::for_rank_id` provides for SUMMA.
//!
//! Shift rounds are point-to-point ([`Rank::send`]/[`Rank::recv`], which
//! do not advance the modeled clock) and are charged manually at one
//! α + β·bytes message per round under [`Step::AShift`], following the
//! `transpose_to_bstyle` precedent. The InnerABC reduction is a team
//! allgather charged under [`Step::CReduce`] plus a deterministic
//! member-index-order local fold (charged as merge compute through the
//! [`Backend`]) — `simgrid`'s allreduce requires `Copy` payloads, which
//! dense stripes are not.

use crate::backend::Backend;
use crate::memory::R_BYTES_PER_NNZ;
use crate::model::{validate_grid, validate_repl};
use crate::{CoreError, Result};
use spgemm_simgrid::{Comm, Rank, Step};
use spgemm_sparse::ops::{block_range, col_block};
use spgemm_sparse::spgemm::C_SPMM_FLOP;
use spgemm_sparse::{spmm_acc, CscMatrix, DenseBlock, Semiring, WorkStats};
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// Communicator color of the 1.5D shift rings (disjoint from the grid's
/// row/col/fiber/layer colors 1–4 and world 0).
pub const COLOR_RING15: u64 = 5;
/// Communicator color of the InnerABC partial-`C` reduction teams.
pub const COLOR_TEAM15: u64 = 6;
/// Tag namespace of the shift rounds (disjoint from the fetch exchange's
/// `0xFE << 48` and the transpose's `0x7A_0001`).
pub const SHIFT_TAG_BASE: u64 = 0x5D << 48;

/// Tag of shift round `round`.
pub fn shift_tag(round: usize) -> u64 {
    SHIFT_TAG_BASE + round as u64
}

/// Which communication-avoiding algorithm runs the multiply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum AlgorithmFamily {
    /// 2D sparse SUMMA: the 3D pipeline pinned to `l = 1`.
    Summa2d,
    /// The paper's batched 3D SUMMA (Alg. 4) — the default.
    #[default]
    Summa3dBatched,
    /// 1.5D ColA sparse-dense SpMM with replication factor `c`.
    ColA15 {
        /// Replication factor (`c | p`).
        c: usize,
    },
    /// 1.5D InnerABC sparse-dense SpMM with replication factor `c`.
    InnerAbc15 {
        /// Replication factor (`c² | p`).
        c: usize,
    },
}

impl AlgorithmFamily {
    /// CLI name of the family (without the replication factor).
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmFamily::Summa2d => "summa2d",
            AlgorithmFamily::Summa3dBatched => "summa3d",
            AlgorithmFamily::ColA15 { .. } => "cola",
            AlgorithmFamily::InnerAbc15 { .. } => "innerabc",
        }
    }

    /// Report label, e.g. `cola(c=2)`.
    pub fn label(self) -> String {
        match self {
            AlgorithmFamily::Summa2d => "summa2d".into(),
            AlgorithmFamily::Summa3dBatched => "summa3d".into(),
            AlgorithmFamily::ColA15 { c } => format!("cola(c={c})"),
            AlgorithmFamily::InnerAbc15 { c } => format!("innerabc(c={c})"),
        }
    }

    /// Replication factor (`1` for the SUMMA families).
    pub fn repl_factor(self) -> usize {
        match self {
            AlgorithmFamily::ColA15 { c } | AlgorithmFamily::InnerAbc15 { c } => c,
            _ => 1,
        }
    }

    /// Whether this is a 1.5D family (sparse-dense SpMM drivers).
    pub fn is_15d(self) -> bool {
        matches!(
            self,
            AlgorithmFamily::ColA15 { .. } | AlgorithmFamily::InnerAbc15 { .. }
        )
    }

    /// Parse a CLI `--algorithm` name plus `--repl-factor` into a family.
    /// `auto` is handled by the caller (it is a planner mode, not a
    /// family) and rejected here.
    pub fn parse(name: &str, c: usize) -> Result<AlgorithmFamily> {
        match name.to_ascii_lowercase().as_str() {
            "summa2d" => Ok(AlgorithmFamily::Summa2d),
            "summa3d" | "summa3dbatched" => Ok(AlgorithmFamily::Summa3dBatched),
            "cola" => Ok(AlgorithmFamily::ColA15 { c }),
            "innerabc" => Ok(AlgorithmFamily::InnerAbc15 { c }),
            other => Err(CoreError::Config(format!(
                "unknown algorithm family '{other}' \
                 (expected summa2d, summa3d, cola, or innerabc)"
            ))),
        }
    }

    /// Validate the family against a process count, mirroring
    /// `validate_grid`'s role for `(p, l)`: the 1.5D families funnel
    /// through [`validate_repl`] and InnerABC additionally requires its
    /// sub-ring length `t/c = p/c²` to be whole.
    pub fn validate(self, p: usize) -> Result<()> {
        match self {
            AlgorithmFamily::Summa2d => validate_grid(p, 1).map(|_| ()),
            AlgorithmFamily::Summa3dBatched => Ok(()),
            AlgorithmFamily::ColA15 { c } => validate_repl(p, c).map(|_| ()),
            AlgorithmFamily::InnerAbc15 { c } => {
                let t = validate_repl(p, c)?;
                if !t.is_multiple_of(c) {
                    return Err(CoreError::Config(format!(
                        "invalid 1.5D replication (p={p}, c={c}): InnerABC needs c² | p \
                         (sub-ring length p/c² = {p}/{} is not whole)",
                        c * c
                    )));
                }
                Ok(())
            }
        }
    }

    /// The families the planner's `auto` mode sweeps at process count
    /// `p`: both SUMMA variants (2D only when `p` is square) plus every
    /// valid replication factor `c ≥ 2` of each 1.5D family, capped at
    /// `c ≤ 8` (beyond that the replicated-input memory dominates any
    /// modeled saving at the scales this repo simulates).
    pub fn sweep(p: usize) -> Vec<AlgorithmFamily> {
        let mut out = vec![AlgorithmFamily::Summa3dBatched];
        if validate_grid(p, 1).is_ok() {
            out.push(AlgorithmFamily::Summa2d);
        }
        out.push(AlgorithmFamily::ColA15 { c: 1 });
        for c in 2..=8usize.min(p) {
            let cola = AlgorithmFamily::ColA15 { c };
            if cola.validate(p).is_ok() {
                out.push(cola);
            }
            let iabc = AlgorithmFamily::InnerAbc15 { c };
            if iabc.validate(p).is_ok() {
                out.push(iabc);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Pure 1.5D layout seams (shared by the drivers and the schedule auditor).
// ---------------------------------------------------------------------------

/// ColA ring of `rank` on `p` ranks with replication `c`: the `t = p/c`
/// ranks `{ℓ, ℓ+c, ℓ+2c, …}` where `ℓ = rank mod c`. Every ring holds all
/// `t` blocks of `A` (one per member), so `A` is stored `c`× overall.
pub fn cola_ring(p: usize, c: usize, rank: usize) -> Vec<usize> {
    let l = rank % c;
    (0..p / c).map(|q| l + q * c).collect()
}

/// Position of `rank` within its ColA ring (also its starting block).
pub fn cola_ring_pos(c: usize, rank: usize) -> usize {
    rank / c
}

/// The global `A` block a ColA rank holds at shift `round` (blocks rotate
/// toward the ring successor, so position `q` sees `q, q−1, q−2, …`).
pub fn cola_block_at(p: usize, c: usize, rank: usize, round: usize) -> usize {
    let t = p / c;
    let q = cola_ring_pos(c, rank);
    (q + t - round % t) % t
}

/// InnerABC stripe index of `rank` (`t = p/c` stripes of `B`/`C`).
pub fn iabc_stripe(t: usize, rank: usize) -> usize {
    rank % t
}

/// InnerABC layer index of `rank` (`c` layers; layer `ℓ` owns the `A`
/// blocks `{k : k ≡ ℓ (mod c)}`).
pub fn iabc_layer(t: usize, rank: usize) -> usize {
    rank / t
}

/// InnerABC shift sub-ring of `rank`: the contiguous group of `t/c` ranks
/// within its layer whose stripe indices share `i − (i mod t/c)` — their
/// starting blocks enumerate the layer's whole block set, so `t/c − 1`
/// rotations visit every block the layer owns.
pub fn iabc_subring(p: usize, c: usize, rank: usize) -> Vec<usize> {
    let t = p / c;
    let m = t / c;
    let l = iabc_layer(t, rank);
    let i = iabc_stripe(t, rank);
    let base = i - i % m;
    (0..m).map(|q| l * t + base + q).collect()
}

/// Position of `rank` within its InnerABC sub-ring.
pub fn iabc_subring_pos(p: usize, c: usize, rank: usize) -> usize {
    let t = p / c;
    iabc_stripe(t, rank) % (t / c)
}

/// The global `A` block an InnerABC rank holds at shift `round`: always
/// one of its layer's blocks `ℓ + c·slot`, with `slot` rotating exactly
/// like the ColA position.
pub fn iabc_block_at(p: usize, c: usize, rank: usize, round: usize) -> usize {
    let t = p / c;
    let m = t / c;
    let l = iabc_layer(t, rank);
    let q = iabc_subring_pos(p, c, rank);
    let slot = (q + m - round % m) % m;
    l + c * slot
}

/// InnerABC replication team of `rank`: the `c` ranks (one per layer)
/// sharing its stripe, which reduce their partial `C` stripes.
pub fn iabc_team(p: usize, c: usize, rank: usize) -> Vec<usize> {
    let t = p / c;
    let i = iabc_stripe(t, rank);
    (0..c).map(|l| l * t + i).collect()
}

// ---------------------------------------------------------------------------
// Drivers.
// ---------------------------------------------------------------------------

/// One rank's result of a 1.5D SpMM run.
#[derive(Debug)]
pub struct Spmm15PerRank<T: Copy> {
    /// The assembled `m × d` product on the simulated root; `None`
    /// elsewhere (and everywhere when `discard` was requested).
    pub gathered: Option<DenseBlock<T>>,
    /// Global columns of this rank's stationary `C` stripe.
    pub stripe: Range<usize>,
    /// Kernel counters accumulated over all local SpMM rounds and folds.
    pub kernel_stats: WorkStats,
    /// Peak modeled bytes resident on this rank (replicated `A` block +
    /// in-flight shift buffer + dense stripes) — what the Eq. 2-style
    /// replication-memory accounting in the planner predicts.
    pub peak_bytes: usize,
}

/// Run one rank of the 1.5D SpMM `C = A·B` (`family` must be a 1.5D
/// member). `a`/`b` are supplied on world rank 0 only and scattered
/// internally (charged to [`Step::Other`] like `dist::scatter`); the
/// product is gathered back to the root unless `discard` is set.
pub fn spmm_15d<S: Semiring>(
    rank: &mut Rank,
    family: AlgorithmFamily,
    a: Option<Arc<CscMatrix<S::T>>>,
    b: Option<Arc<DenseBlock<S::T>>>,
    backend: &dyn Backend,
    discard: bool,
) -> Result<Spmm15PerRank<S::T>> {
    let p = rank.world_size();
    family.validate(p)?;
    let c = family.repl_factor();
    let world = rank.world_comm();

    // Scatter: root broadcasts the globals as Arcs (zero-copy in shared
    // memory); every rank slices out its own pieces.
    let a = rank.bcast(&world, 0, a, 0, Step::Other);
    let b = rank.bcast(&world, 0, b, 0, Step::Other);
    if a.ncols() != b.nrows() {
        return Err(CoreError::Config(format!(
            "inner dimensions differ: A is {}x{}, B is {}x{}",
            a.nrows(),
            a.ncols(),
            b.nrows(),
            b.ncols()
        )));
    }
    let (m, n_inner, d) = (a.nrows(), a.ncols(), b.ncols());
    let me = rank.rank();
    let t = p / c;

    // Stationary layout: this rank's column stripe of B and C, the ring
    // it rotates A blocks around, its starting block, and (InnerABC) the
    // reduction team.
    let (stripe, ring_members, pos0, block0, rounds) = match family {
        AlgorithmFamily::ColA15 { .. } => (
            block_range(d, p, me),
            cola_ring(p, c, me),
            cola_ring_pos(c, me),
            cola_block_at(p, c, me, 0),
            t,
        ),
        AlgorithmFamily::InnerAbc15 { .. } => (
            block_range(d, t, iabc_stripe(t, me)),
            iabc_subring(p, c, me),
            iabc_subring_pos(p, c, me),
            iabc_block_at(p, c, me, 0),
            t / c,
        ),
        other => {
            return Err(CoreError::Config(format!(
                "spmm_15d runs the 1.5D families, not {}",
                other.label()
            )))
        }
    };
    let b_stripe = b.col_slice(stripe.clone());
    let mut c_stripe = DenseBlock::new_fill(m, stripe.len(), S::zero());
    let ring = Comm::for_rank(ring_members, COLOR_RING15, me);
    let ring_len = ring.size();

    let mut cur_block = block0;
    let mut cur = col_block(&a, block_range(n_inner, t, cur_block));
    let dense_bytes = b_stripe.modeled_bytes() + c_stripe.modeled_bytes();
    let mut peak_bytes = cur.modeled_bytes(R_BYTES_PER_NNZ) + dense_bytes;
    let mut kernel_stats = WorkStats::default();

    for round in 0..rounds {
        debug_assert_eq!(
            cur_block,
            match family {
                AlgorithmFamily::ColA15 { .. } => cola_block_at(p, c, me, round),
                _ => iabc_block_at(p, c, me, round),
            },
            "shift rotation disagrees with the pure layout seam"
        );
        let t0 = Instant::now();
        let inner = block_range(n_inner, t, cur_block);
        let stats = spmm_acc::<S>(&cur, &b_stripe, inner.start, &mut c_stripe)
            .map_err(CoreError::Sparse)?;
        backend.charge(rank, Step::LocalMultiply, &stats, t0.elapsed().as_secs_f64());
        kernel_stats.merge(stats);

        if round + 1 < rounds {
            // A-Shift: rotate the block to the ring successor. `send`/
            // `recv` are free on the modeled clock, so charge one
            // α + β·bytes point-to-point message manually (the
            // `transpose_to_bstyle` precedent).
            let succ = (pos0 + 1) % ring_len;
            let pred = (pos0 + ring_len - 1) % ring_len;
            rank.send(&ring, succ, shift_tag(round), (cur_block as u64, cur));
            let (idx, mat) =
                rank.recv::<(u64, CscMatrix<S::T>)>(&ring, pred, shift_tag(round));
            let bytes = mat.nnz() * R_BYTES_PER_NNZ;
            let cost = rank.machine().send_secs(bytes);
            rank.clock_mut().advance(Step::AShift, cost);
            rank.clock_mut().record_comm(Step::AShift, bytes as u64, 1);
            cur = mat;
            cur_block = idx as usize;
            // Both the resident and the in-flight block count while the
            // shift is un-acknowledged.
            peak_bytes = peak_bytes
                .max(2 * cur.modeled_bytes(R_BYTES_PER_NNZ) + dense_bytes);
        }
    }

    // C-Reduce (InnerABC, c > 1): each stripe's replication team combines
    // its layer-partial stripes. Allgather (the runtime's allreduce needs
    // `Copy` payloads) + a deterministic member-index-order fold.
    if matches!(family, AlgorithmFamily::InnerAbc15 { .. }) && c > 1 {
        let team = Comm::for_rank(iabc_team(p, c, me), COLOR_TEAM15, me);
        let bytes_each = c_stripe.modeled_bytes();
        peak_bytes = peak_bytes.max(dense_bytes + c * bytes_each);
        let parts: Vec<Vec<S::T>> =
            rank.allgather(&team, c_stripe.into_data(), bytes_each, Step::CReduce);
        let t0 = Instant::now();
        let mut folded = Vec::new();
        let mut fold_stats = WorkStats::default();
        for part in parts {
            if folded.is_empty() {
                folded = part;
            } else {
                for (slot, v) in folded.iter_mut().zip(part) {
                    *slot = S::add(*slot, v);
                }
                fold_stats.flops += stripe.len() as u64 * m as u64;
            }
        }
        fold_stats.work_units = fold_stats.flops as f64 * C_SPMM_FLOP;
        backend.charge(rank, Step::MergeFiber, &fold_stats, t0.elapsed().as_secs_f64());
        kernel_stats.merge(fold_stats);
        c_stripe = DenseBlock::from_raw(m, stripe.len(), folded).map_err(CoreError::Sparse)?;
    }

    // Gather the stationary stripes back to the root (harness overhead,
    // Step::Other, like `gather_pieces`). InnerABC stripes arrive once
    // per layer; replicas are bit-identical after the reduction, so the
    // root's writes are idempotent.
    let gathered = if discard {
        let _ = rank.gather_to_root(&world, 0, Vec::<(u64, Vec<S::T>)>::new(), 0, Step::Other);
        None
    } else {
        let payload = vec![(stripe.start as u64, c_stripe.data().to_vec())];
        rank.gather_to_root(&world, 0, payload, 0, Step::Other)
            .map(|all| {
                let mut out = DenseBlock::new_fill(m, d, S::zero());
                for rank_stripes in all {
                    for (start, data) in rank_stripes {
                        let w = data.len().checked_div(m).unwrap_or(0);
                        for (jj, chunk) in data.chunks_exact(m.max(1)).enumerate().take(w) {
                            out.col_mut(start as usize + jj).copy_from_slice(chunk);
                        }
                    }
                }
                out
            })
    };

    Ok(Spmm15PerRank {
        gathered,
        stripe,
        kernel_stats,
        peak_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_labels() {
        assert_eq!(
            AlgorithmFamily::parse("summa3d", 1).unwrap(),
            AlgorithmFamily::Summa3dBatched
        );
        assert_eq!(
            AlgorithmFamily::parse("cola", 4).unwrap(),
            AlgorithmFamily::ColA15 { c: 4 }
        );
        assert_eq!(
            AlgorithmFamily::parse("InnerABC", 2).unwrap(),
            AlgorithmFamily::InnerAbc15 { c: 2 }
        );
        assert!(AlgorithmFamily::parse("auto", 1).is_err());
        assert_eq!(AlgorithmFamily::ColA15 { c: 2 }.label(), "cola(c=2)");
        assert_eq!(AlgorithmFamily::InnerAbc15 { c: 4 }.repl_factor(), 4);
        assert_eq!(AlgorithmFamily::default(), AlgorithmFamily::Summa3dBatched);
    }

    #[test]
    fn validate_names_the_pair() {
        // The (p, c) mirror of the degenerate-grid (p, l) errors.
        let err = AlgorithmFamily::ColA15 { c: 3 }.validate(16).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("p=16") && msg.contains("c=3"), "{msg}");
        let err = AlgorithmFamily::ColA15 { c: 32 }.validate(16).unwrap_err();
        assert!(err.to_string().contains("cannot exceed"), "{err}");
        let err = AlgorithmFamily::ColA15 { c: 0 }.validate(16).unwrap_err();
        assert!(err.to_string().contains("c=0"), "{err}");
        // InnerABC additionally needs c² | p (8 % 4 = 0 but 16 ∤ 8).
        let err = AlgorithmFamily::InnerAbc15 { c: 4 }.validate(8).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("p=8") && msg.contains("c=4") && msg.contains("c²"), "{msg}");
        assert!(AlgorithmFamily::InnerAbc15 { c: 4 }.validate(16).is_ok());
        assert!(AlgorithmFamily::ColA15 { c: 4 }.validate(16).is_ok());
    }

    #[test]
    fn cola_rings_partition_and_rotate() {
        let (p, c) = (12, 3);
        let t = p / c;
        // Rings partition the ranks; each rank sits at its stated position.
        let mut seen = vec![false; p];
        for r in 0..p {
            let ring = cola_ring(p, c, r);
            assert_eq!(ring.len(), t);
            assert_eq!(ring[cola_ring_pos(c, r)], r);
            for &g in &ring {
                assert_eq!(g % c, r % c);
            }
            seen[r] = true;
        }
        assert!(seen.into_iter().all(|s| s));
        // Across a full rotation, every rank sees every block exactly once,
        // and at each round a ring's members hold distinct blocks.
        for r in 0..p {
            let mut blocks: Vec<usize> = (0..t).map(|s| cola_block_at(p, c, r, s)).collect();
            blocks.sort_unstable();
            assert_eq!(blocks, (0..t).collect::<Vec<_>>());
        }
        for round in 0..t {
            let ring = cola_ring(p, c, 0);
            let mut held: Vec<usize> =
                ring.iter().map(|&g| cola_block_at(p, c, g, round)).collect();
            held.sort_unstable();
            assert_eq!(held, (0..t).collect::<Vec<_>>());
        }
    }

    #[test]
    fn iabc_layout_covers_all_blocks_once() {
        let (p, c) = (16, 2);
        let t = p / c; // 8 stripes
        let m = t / c; // 4-rank sub-rings
        for r in 0..p {
            let sub = iabc_subring(p, c, r);
            assert_eq!(sub.len(), m);
            assert_eq!(sub[iabc_subring_pos(p, c, r)], r);
            // All sub-ring members are in the same layer.
            for &g in &sub {
                assert_eq!(iabc_layer(t, g), iabc_layer(t, r));
            }
            // Over a full rotation this rank sees exactly its layer's
            // block set {k : k ≡ ℓ (mod c)}.
            let l = iabc_layer(t, r);
            let mut blocks: Vec<usize> = (0..m).map(|s| iabc_block_at(p, c, r, s)).collect();
            blocks.sort_unstable();
            let expect: Vec<usize> = (0..t).filter(|k| k % c == l).collect();
            assert_eq!(blocks, expect, "rank {r}");
            // The team has one member per layer, all sharing the stripe.
            let team = iabc_team(p, c, r);
            assert_eq!(team.len(), c);
            for (l2, &g) in team.iter().enumerate() {
                assert_eq!(iabc_layer(t, g), l2);
                assert_eq!(iabc_stripe(t, g), iabc_stripe(t, r));
            }
        }
        // Union over one team's layers = all blocks (the reduction's
        // correctness condition).
        let mut all: Vec<usize> = (0..c)
            .flat_map(|l| (0..t).filter(move |k| k % c == l))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..t).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_respects_divisibility() {
        let fams = AlgorithmFamily::sweep(16);
        assert!(fams.contains(&AlgorithmFamily::Summa3dBatched));
        assert!(fams.contains(&AlgorithmFamily::Summa2d));
        assert!(fams.contains(&AlgorithmFamily::ColA15 { c: 2 }));
        assert!(fams.contains(&AlgorithmFamily::ColA15 { c: 8 }));
        assert!(fams.contains(&AlgorithmFamily::InnerAbc15 { c: 2 }));
        assert!(fams.contains(&AlgorithmFamily::InnerAbc15 { c: 4 }));
        assert!(!fams.contains(&AlgorithmFamily::InnerAbc15 { c: 8 })); // 64 ∤ 16
        assert!(!fams.contains(&AlgorithmFamily::ColA15 { c: 3 })); // 3 ∤ 16
        // Non-square p: no Summa2d, but 1.5D works.
        let fams = AlgorithmFamily::sweep(12);
        assert!(!fams.contains(&AlgorithmFamily::Summa2d));
        assert!(fams.contains(&AlgorithmFamily::ColA15 { c: 6 }));
        assert!(fams.contains(&AlgorithmFamily::InnerAbc15 { c: 2 })); // c²=4 | 12
        assert!(!fams.contains(&AlgorithmFamily::InnerAbc15 { c: 6 })); // 36 ∤ 12
    }
}
