//! Conformance tests for the schedule auditor: the symbolic traces of
//! [`spgemm_core::audit::trace_program`] must match what the *real*
//! runtime registers with the protocol checker, collective for collective.
//!
//! The projection compared is `(comm, op, root, seq)` per rank in program
//! order — exactly the signature the checker rendezvouses on. Waits are
//! excluded (completions don't re-enter the checker) and so are the fetch
//! protocol's point-to-point messages (the checker tracks them separately);
//! those are covered by the auditor's replay verifier and the runtime's
//! own tag-collision tests.

use spgemm_core::audit::{trace_program, AuditEvent, TraceProgram};
use spgemm_core::batched::BatchConfig;
use spgemm_core::{CoreError, ExchangeMode, IterSession, MemoryBudget, OverlapMode};
use spgemm_simgrid::{run_ranks_logged, Grid3D, LoggedOp, Machine, OpKind};
use spgemm_sparse::gen::er_random;
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::CscMatrix;
use std::sync::Arc;

/// The agreement signature of one collective/post registration.
type Sig = (u64, OpKind, Option<usize>, u64);

/// Project a symbolic schedule onto per-rank signature sequences.
fn symbolic_projection(prog: &TraceProgram) -> Vec<Vec<Sig>> {
    trace_program(prog)
        .traces
        .iter()
        .map(|trace| {
            trace
                .iter()
                .filter_map(|e| match *e {
                    AuditEvent::Collective {
                        comm,
                        op,
                        root,
                        seq,
                        ..
                    } => Some((comm, op, root, seq)),
                    AuditEvent::Post {
                        comm,
                        op,
                        root,
                        seq,
                    } => Some((comm, op, root, seq)),
                    _ => None,
                })
                .collect()
        })
        .collect()
}

/// Project the checker's op log onto per-rank signature sequences (each
/// rank's subsequence of the log is its program order).
fn real_projection(p: usize, log: &[LoggedOp]) -> Vec<Vec<Sig>> {
    let mut per: Vec<Vec<Sig>> = vec![Vec::new(); p];
    for o in log {
        per[o.rank].push((o.comm, o.kind, o.root, o.seq));
    }
    per
}

/// Drive a real [`IterSession`] for `iters` iterations under the checker's
/// op log; returns the per-iteration batch counts (SPMD-agreed) and the
/// log.
#[allow(clippy::too_many_arguments)] // mirrors the audited config tuple
fn run_real_session(
    global: &CscMatrix<f64>,
    p: usize,
    l: usize,
    exchange: ExchangeMode,
    overlap: OverlapMode,
    forced: Option<usize>,
    budget: MemoryBudget,
    iters: usize,
) -> (Vec<usize>, Vec<LoggedOp>) {
    let g = Arc::new(global.clone());
    let (results, log) = run_ranks_logged(p, Machine::knl_mini(), move |rank| {
        let grid = Grid3D::new(rank, l);
        let cfg = BatchConfig {
            exchange,
            overlap,
            forced_batches: forced,
            budget,
            ..BatchConfig::default()
        };
        let mut sess = IterSession::<PlusTimesF64>::new(
            rank,
            &grid,
            (rank.rank() == 0).then(|| Arc::clone(&g)),
            cfg,
            true,
        )?;
        let mut nbatches = Vec::with_capacity(iters);
        for _ in 0..iters {
            let st = sess.step(rank, &grid, |_, out| Some(out.piece))?;
            nbatches.push(st.nbatches);
        }
        Ok::<_, CoreError>(nbatches)
    });
    let per_rank: Vec<Vec<usize>> = results
        .into_iter()
        .map(|r| r.expect("session run must succeed"))
        .collect();
    for (i, nb) in per_rank.iter().enumerate() {
        assert_eq!(nb, &per_rank[0], "rank {i} disagrees on batch counts");
    }
    (per_rank[0].clone(), log)
}

/// Compare the two projections rank by rank, with a readable first-diff
/// report.
fn assert_conformant(label: &str, sym: &[Vec<Sig>], real: &[Vec<Sig>]) {
    assert_eq!(sym.len(), real.len(), "{label}: rank count");
    for (r, (s, g)) in sym.iter().zip(real.iter()).enumerate() {
        if s != g {
            let at = s
                .iter()
                .zip(g.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| s.len().min(g.len()));
            panic!(
                "{label}: rank {r} diverges at op {at}\n  symbolic ({} ops): {:?}\n  real     ({} ops): {:?}",
                s.len(),
                s.get(at),
                g.len(),
                g.get(at),
            );
        }
    }
}

/// Forced batch counts (no symbolic sweep): the symbolic trace matches
/// the real session across both exchange modes, both overlap modes, and
/// multi-layer vs single-layer grids, over multiple iterations.
#[test]
fn symbolic_trace_matches_real_session_forced_batches() {
    let m = er_random::<PlusTimesF64>(32, 32, 3, 77);
    for (p, l) in [(4usize, 1usize), (16, 4)] {
        for exchange in ExchangeMode::ALL {
            for overlap in [OverlapMode::Blocking, OverlapMode::Overlapped] {
                let forced = 2usize;
                let iters = 2usize;
                let (nbatches, log) = run_real_session(
                    &m,
                    p,
                    l,
                    exchange,
                    overlap,
                    Some(forced),
                    MemoryBudget::unlimited(),
                    iters,
                );
                assert!(nbatches.iter().all(|&b| b == forced));
                let prog = TraceProgram {
                    p,
                    l,
                    exchange,
                    overlap,
                    iterations: iters,
                    nbatches: forced,
                    run_symbolic: false,
                    scatter: true,
                    session: true,
                    modeled_nnz: (0, 0, 0),
                };
                let label = format!("p={p} l={l} {exchange:?} {overlap:?} forced");
                assert_conformant(
                    &label,
                    &symbolic_projection(&prog),
                    &real_projection(p, &log),
                );
            }
        }
    }
}

/// The session's default path (no forced count, unlimited budget,
/// block-cyclic batching) skips the symbolic sweep and runs one batch —
/// and the auditor's model of that path matches the real run.
#[test]
fn symbolic_trace_matches_real_session_default_path() {
    let m = er_random::<PlusTimesF64>(24, 24, 3, 78);
    for exchange in ExchangeMode::ALL {
        let (p, l) = (16usize, 4usize);
        let (nbatches, log) = run_real_session(
            &m,
            p,
            l,
            exchange,
            OverlapMode::Blocking,
            None,
            MemoryBudget::unlimited(),
            2,
        );
        assert!(nbatches.iter().all(|&b| b == 1), "default path is b=1");
        let prog = TraceProgram {
            p,
            l,
            exchange,
            overlap: OverlapMode::Blocking,
            iterations: 2,
            nbatches: 1,
            run_symbolic: false,
            scatter: true,
            session: true,
            modeled_nnz: (0, 0, 0),
        };
        let label = format!("default path {exchange:?}");
        assert_conformant(
            &label,
            &symbolic_projection(&prog),
            &real_projection(p, &log),
        );
    }
}

/// Budget-driven batching: the real session runs the Alg. 3 symbolic
/// sweep (stage exchange + eight world reductions) before the batches,
/// and the auditor's `run_symbolic` model reproduces its schedule exactly.
/// The real batch count is data-dependent, so it is read back from the
/// run and fed to the trace program.
#[test]
fn symbolic_trace_matches_real_session_budget_path() {
    let m = er_random::<PlusTimesF64>(48, 48, 4, 79);
    for exchange in ExchangeMode::ALL {
        for overlap in [OverlapMode::Blocking, OverlapMode::Overlapped] {
            let (p, l) = (4usize, 1usize);
            // Tight enough to force batching, loose enough to be feasible
            // (inputs need ~2.7 KB per process on this workload).
            let budget = MemoryBudget::new(13_000);
            let (nbatches, log) = run_real_session(
                &m,
                p,
                l,
                exchange,
                overlap,
                None,
                budget,
                1,
            );
            let b = nbatches[0];
            assert!(b > 1, "budget must force batching (got b={b})");
            let prog = TraceProgram {
                p,
                l,
                exchange,
                overlap,
                iterations: 1,
                nbatches: b,
                run_symbolic: true,
                scatter: true,
                session: true,
                modeled_nnz: (0, 0, 0),
            };
            let label = format!("budget path {exchange:?} {overlap:?} (b={b})");
            assert_conformant(
                &label,
                &symbolic_projection(&prog),
                &real_projection(p, &log),
            );
        }
    }
}

/// The full sweep over small world sizes verifies clean in-process (the
/// CI lane runs the bigger release-mode sweep through the CLI).
#[test]
fn small_sweep_is_clean() {
    let report = spgemm_core::audit::sweep(&[4, 16], None);
    assert!(
        report.violations().is_empty(),
        "violations: {:?}",
        report.violations()
    );
    assert!(report.ok_count() > 0);
}

/// Acceptance: an injected schedule bug is caught and named — the report
/// carries the configuration label and the offending event.
#[test]
fn injected_bugs_are_caught_and_named() {
    use spgemm_core::audit::{AuditFault, ConfigOutcome};
    for fault in [AuditFault::SkipWait, AuditFault::WrongFetchTag] {
        let report = spgemm_core::audit::sweep(&[16], Some(fault));
        let violated = report.violations();
        assert!(
            !violated.is_empty(),
            "{fault:?} must be caught somewhere in the sweep"
        );
        for (label, vs) in &violated {
            assert!(!label.is_empty());
            assert!(!vs.is_empty());
        }
        // Configurations where the fault applies must never verify clean
        // AND carry the mutation (inject returning None marks them
        // infeasible instead) — i.e. every applicable config is caught.
        let silently_ok = report
            .results
            .iter()
            .filter(|r| matches!(r.outcome, ConfigOutcome::Ok { .. }))
            .count();
        assert_eq!(
            silently_ok, 0,
            "{fault:?}: {silently_ok} mutated configuration(s) verified clean"
        );
    }
}
