//! Native backend conformance: real threads, same bits.
//!
//! The Backend abstraction's contract is that switching `Simgrid` →
//! `Native { threads }` changes *execution* (kernels run multithreaded,
//! compute steps are charged measured wall-clock seconds) but never the
//! *result*: the gathered product is bit-identical (`==` on the CSC, not
//! just `eq_modulo_order`), communication is still modeled so the recorded
//! collective bytes/messages match exactly, and the exact-integer kernel
//! meters (flops, nnz produced) agree. The calibrator then fits a machine
//! profile from a Native run's measured breakdowns.

use spgemm_core::planner::{calibrate, CalibrationInput};
use spgemm_core::{
    run_spgemm, run_spgemm_aat, BackendKind, KernelStrategy, MergeSchedule, OverlapMode, RunConfig,
};
use spgemm_simgrid::{CheckMode, Step};
use spgemm_sparse::gen::{er_random, rmat};
use spgemm_sparse::semiring::{PlusTimesF64, PlusTimesU64, Semiring};
use spgemm_sparse::CscMatrix;

fn run<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
    p: usize,
    l: usize,
    backend: BackendKind,
    kernels: KernelStrategy,
) -> spgemm_core::RunOutput<S::T> {
    let mut cfg = RunConfig::new(p, l);
    cfg.backend = backend;
    cfg.kernels = kernels;
    cfg.forced_batches = Some(2);
    cfg.check = CheckMode::Check;
    run_spgemm::<S>(&cfg, a, b).unwrap()
}

/// Headline acceptance: Native at 8 threads is bit-identical to Simgrid
/// across grids, kernel generations, and semirings.
#[test]
fn native_eight_threads_bit_identical_to_simgrid() {
    let af = er_random::<PlusTimesF64>(64, 64, 5, 410);
    let bf = er_random::<PlusTimesF64>(64, 64, 5, 411);
    let au = er_random::<PlusTimesU64>(64, 64, 5, 412);
    let bu = er_random::<PlusTimesU64>(64, 64, 5, 413);
    for (p, l) in [(4usize, 1usize), (16, 4)] {
        for kernels in [KernelStrategy::New, KernelStrategy::Previous] {
            let native = BackendKind::Native { threads: 8 };
            let sim = run::<PlusTimesF64>(&af, &bf, p, l, BackendKind::Simgrid, kernels);
            let nat = run::<PlusTimesF64>(&af, &bf, p, l, native, kernels);
            assert_eq!(
                sim.c.as_ref().unwrap(),
                nat.c.as_ref().unwrap(),
                "f64 product differs: p={p} l={l} {kernels:?}"
            );
            let sim = run::<PlusTimesU64>(&au, &bu, p, l, BackendKind::Simgrid, kernels);
            let nat = run::<PlusTimesU64>(&au, &bu, p, l, native, kernels);
            assert_eq!(
                sim.c.as_ref().unwrap(),
                nat.c.as_ref().unwrap(),
                "u64 product differs: p={p} l={l} {kernels:?}"
            );
            // Exact-integer kernel meters agree; communication is modeled
            // identically in both backends.
            assert_eq!(sim.kernel_stats.flops, nat.kernel_stats.flops);
            assert_eq!(sim.kernel_stats.nnz_out, nat.kernel_stats.nnz_out);
            for step in [Step::ABcast, Step::BBcast, Step::AllToAllFiber] {
                assert_eq!(sim.max.bytes_of(step), nat.max.bytes_of(step));
            }
        }
    }
}

/// Every thread count (including 1 and more-threads-than-columns) and the
/// incremental merge schedule reproduce the Simgrid bits on A·Aᵀ.
#[test]
fn native_thread_sweep_and_merge_schedules_match() {
    let a = rmat::<PlusTimesF64>(6, 4, None, false, 414); // 64², skewed
    for threads in [1usize, 2, 3, 8, 128] {
        for sched in [MergeSchedule::AfterAllStages, MergeSchedule::Incremental] {
            let mut cfg = RunConfig::new(16, 4);
            cfg.merge_schedule = sched;
            cfg.overlap = OverlapMode::Overlapped;
            cfg.check = CheckMode::Check;
            cfg.backend = BackendKind::Simgrid;
            let sim = run_spgemm_aat::<PlusTimesF64>(&cfg, &a).unwrap();
            cfg.backend = BackendKind::Native { threads };
            let nat = run_spgemm_aat::<PlusTimesF64>(&cfg, &a).unwrap();
            assert_eq!(
                sim.c.as_ref().unwrap(),
                nat.c.as_ref().unwrap(),
                "A·Aᵀ differs at {threads} threads, {sched:?}"
            );
        }
    }
}

/// Multithreaded Native runs record per-thread load balance (imbalance
/// ≥ 1.0 once parallel ranges execute); Simgrid runs record nothing.
#[test]
fn native_records_load_balance() {
    let a = er_random::<PlusTimesF64>(96, 96, 6, 415);
    let sim = run::<PlusTimesF64>(&a, &a, 4, 1, BackendKind::Simgrid, KernelStrategy::New);
    assert_eq!(sim.load_balance.imbalance(), 0.0);
    assert_eq!(sim.load_balance.invocations, 0);
    let nat = run::<PlusTimesF64>(
        &a,
        &a,
        4,
        1,
        BackendKind::Native { threads: 4 },
        KernelStrategy::New,
    );
    assert!(nat.load_balance.invocations > 0, "no parallel invocations recorded");
    assert!(
        nat.load_balance.imbalance() >= 1.0,
        "imbalance {} below 1.0",
        nat.load_balance.imbalance()
    );
}

/// Native runs advance the clock by measured seconds: compute time is
/// positive and the breakdown feeds the calibrator, whose fitted profile
/// reproduces the measured compute time under the run's thread count.
#[test]
fn calibrator_fits_profile_from_native_run() {
    let a = er_random::<PlusTimesF64>(96, 96, 8, 416);
    let threads = 4usize;
    let out = run::<PlusTimesF64>(
        &a,
        &a,
        4,
        1,
        BackendKind::Native { threads },
        KernelStrategy::New,
    );
    let comp: f64 = out.per_rank.iter().map(|b| b.comp_total()).sum::<f64>();
    assert!(comp > 0.0, "measured compute seconds must be positive");
    let base = spgemm_simgrid::Machine::knl();
    let profile = calibrate(
        &base,
        &CalibrationInput {
            p: 4,
            layers: 1,
            per_rank: &out.per_rank,
            total_work_units: Some(out.kernel_stats.work_units),
            threads: Some(threads),
        },
    );
    assert_eq!(profile.threads_per_proc, threads);
    assert_eq!(profile.thread_efficiency, 1.0);
    assert!(profile.secs_per_work_unit > 0.0 && profile.secs_per_work_unit.is_finite());
    // The fitted machine predicts the mean measured compute time back.
    let m = profile.to_machine();
    let mean_comp = comp / 4.0;
    let per_proc_work = out.kernel_stats.work_units / 4.0;
    let predicted = m.compute_secs(per_proc_work);
    assert!(
        (predicted / mean_comp - 1.0).abs() < 1e-9,
        "round-trip mismatch: predicted {predicted}, measured {mean_comp}"
    );
}
