//! Property tests for the job server's admission control: across random
//! job mixes, arrival orders, global budgets and concurrency levels,
//!
//! 1. the sum of admitted jobs' Eq. 2 modeled peaks never exceeds the
//!    global budget (the high-water mark `peak_reserved_bytes` is the
//!    witness; the controller additionally asserts the invariant on every
//!    reservation, so a violation would panic the scheduler), and
//! 2. every submitted job terminates in exactly one report — completed
//!    or *explicitly* rejected; nothing is silently dropped.

use proptest::prelude::*;
use spgemm_core::serve::{JobSemiring, Priority};
use spgemm_core::{JobReport, JobServer, JobSpec, MemoryBudget, ServerConfig};
use spgemm_simgrid::Machine;
use spgemm_sparse::gen::er_random;
use spgemm_sparse::semiring::PlusTimesF64;
use std::collections::HashSet;
use std::sync::mpsc::channel;
use std::time::Duration;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drive a random mix against one server and return every report plus
/// the final counters.
fn drive(
    budget_bytes: usize,
    njobs: usize,
    concurrency: usize,
    shrink: bool,
    seed: u64,
) -> (Vec<JobReport>, spgemm_core::ServerStats) {
    let mut cfg = ServerConfig::new(budget_bytes);
    cfg.machine = Machine::knl_mini();
    cfg.max_concurrency = concurrency;
    cfg.shrink = shrink;
    let server = JobServer::start(cfg);
    // Three structural families; squaring each is the A·A pattern.
    let handles = [
        server.register(er_random::<PlusTimesF64>(32, 32, 3, 11)),
        server.register(er_random::<PlusTimesF64>(48, 48, 4, 12)),
        server.register(er_random::<PlusTimesF64>(64, 64, 4, 13)),
    ];

    let mut rng = seed;
    let (tx, rx) = channel();
    let mut ids = HashSet::new();
    for _ in 0..njobs {
        let h = handles[(splitmix64(&mut rng) % 3) as usize];
        let p = if splitmix64(&mut rng).is_multiple_of(2) { 4 } else { 16 };
        let mut spec = JobSpec::new(h, h, p, MemoryBudget::unlimited());
        spec.keep_output = false;
        spec.semiring = if splitmix64(&mut rng).is_multiple_of(4) {
            JobSemiring::MinPlus
        } else {
            JobSemiring::PlusTimes
        };
        spec.priority = match splitmix64(&mut rng) % 3 {
            0 => Priority::Low,
            1 => Priority::Normal,
            _ => Priority::High,
        };
        // Some jobs carry their own (tighter) budget; some a queue
        // deadline — both paths must still end in exactly one report.
        if splitmix64(&mut rng).is_multiple_of(3) {
            spec.budget = MemoryBudget::new(budget_bytes / 2 + 1);
        }
        if splitmix64(&mut rng).is_multiple_of(5) {
            spec.deadline = Some(Duration::from_millis(200));
        }
        let id = server.submit_with(spec, tx.clone());
        assert!(ids.insert(id), "duplicate job id {id}");
    }
    let mut reports = Vec::with_capacity(njobs);
    for _ in 0..njobs {
        reports.push(rx.recv().expect("a submitted job never reported"));
    }
    let stats = server.shutdown();
    (reports, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The budget invariant and the exactly-one-report guarantee, over
    /// random budgets (from starvation-tight to ample), mixes and
    /// arrival orders.
    #[test]
    fn admitted_peaks_never_exceed_the_global_budget(
        budget_kb in 64usize..8192,
        njobs in 4usize..12,
        concurrency in 1usize..4,
        shrink_bit in 0usize..2,
        seed in 0u64..1_000,
    ) {
        let shrink = shrink_bit == 1;
        let budget = budget_kb * 1024;
        let (reports, stats) = drive(budget, njobs, concurrency, shrink, seed);

        // Every job reported exactly once, with a distinct id.
        prop_assert_eq!(reports.len(), njobs);
        let ids: HashSet<u64> = reports.iter().map(|r| r.id).collect();
        prop_assert_eq!(ids.len(), njobs);

        // Completed + rejected partition the submissions.
        let completed = reports.iter().filter(|r| r.completed().is_some()).count();
        let rejected = reports.iter().filter(|r| r.rejected().is_some()).count();
        prop_assert_eq!(completed + rejected, njobs);
        prop_assert_eq!(stats.submitted as usize, njobs);
        prop_assert_eq!(stats.completed as usize, completed);
        prop_assert_eq!(stats.rejected as usize, rejected);

        // The invariant: concurrent admitted peaks never summed past the
        // budget, and no single admission outgrew it either.
        prop_assert!(
            stats.peak_reserved_bytes <= stats.budget_bytes,
            "peak reserved {} exceeded global budget {}",
            stats.peak_reserved_bytes, stats.budget_bytes
        );
        for r in &reports {
            if let Some(done) = r.completed() {
                prop_assert!(done.reserved_bytes <= budget);
            }
        }

        // Nothing left behind in the drained server.
        prop_assert_eq!(stats.queue_depth, 0);
        prop_assert_eq!(stats.running, 0);
        prop_assert_eq!(stats.reserved_bytes, 0);
    }
}

/// A budget so tight that jobs must serialize: the queue forms, yet every
/// job still completes (no starvation for a finite stream) and the peak
/// stays under the budget.
#[test]
fn tight_budget_serializes_but_never_starves() {
    let mut cfg = ServerConfig::new(0); // placeholder, fixed below
    cfg.machine = Machine::knl_mini();
    cfg.max_concurrency = 3;
    cfg.shrink = false;
    // Find one job's planned demand first with an ample server…
    let probe_server = JobServer::start(ServerConfig {
        machine: Machine::knl_mini(),
        ..ServerConfig::new(usize::MAX / 4)
    });
    let h = probe_server.register(er_random::<PlusTimesF64>(48, 48, 4, 21));
    let mut spec = JobSpec::new(h, h, 4, MemoryBudget::unlimited());
    spec.keep_output = false;
    let one = probe_server.submit(spec.clone()).wait();
    let reserved = one.completed().expect("ample run completes").reserved_bytes;
    drop(probe_server);

    // …then give a fresh server room for exactly ~1.5 jobs.
    cfg.budget_bytes = reserved + reserved / 2;
    let server = JobServer::start(cfg);
    let h = server.register(er_random::<PlusTimesF64>(48, 48, 4, 21));
    spec.a = h;
    spec.b = h;
    let (tx, rx) = channel();
    for _ in 0..6 {
        server.submit_with(spec.clone(), tx.clone());
    }
    for _ in 0..6 {
        let r = rx.recv().expect("report");
        assert!(r.completed().is_some(), "starved or rejected: {:?}", r.outcome);
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 6);
    assert!(stats.queued_ever >= 1, "budget for 1.5 jobs should have queued some");
    assert!(stats.peak_reserved_bytes <= stats.budget_bytes);
}

/// Shrink-and-batch admits a job the planned peak would not fit, by
/// raising its batch count — and reports exactly how.
#[test]
fn shrink_and_batch_admits_with_raised_batches() {
    // Plan demand under an ample server to size the tight budget.
    let probe_server = JobServer::start(ServerConfig {
        machine: Machine::knl_mini(),
        ..ServerConfig::new(usize::MAX / 4)
    });
    let h = probe_server.register(er_random::<PlusTimesF64>(64, 64, 4, 31));
    let mut spec = JobSpec::new(h, h, 4, MemoryBudget::unlimited());
    spec.keep_output = false;
    let one = probe_server.submit(spec.clone()).wait();
    let done = one.completed().expect("completes");
    let planned_peak = done.reserved_bytes;
    drop(probe_server);

    // A budget below the planned peak forces the shrink path (or an
    // honest queue/reject — but with shrink on and a peak dominated by
    // the unmerged term, raising b must eventually fit).
    let mut cfg = ServerConfig::new(planned_peak.saturating_sub(planned_peak / 4));
    cfg.machine = Machine::knl_mini();
    cfg.shrink = true;
    let server = JobServer::start(cfg);
    let h = server.register(er_random::<PlusTimesF64>(64, 64, 4, 31));
    spec.a = h;
    spec.b = h;
    let report = server.submit(spec).wait();
    let stats = server.shutdown();
    assert!(stats.peak_reserved_bytes <= stats.budget_bytes);
    match report.completed() {
        Some(done) => {
            use spgemm_core::serve::AdmitKind;
            match done.admit {
                AdmitKind::Shrunk {
                    planned_batches,
                    forced_batches,
                } => {
                    assert!(forced_batches > planned_batches);
                    assert_eq!(done.nbatches, forced_batches);
                    assert_eq!(stats.shrunk_admissions, 1);
                }
                AdmitKind::AsPlanned => {
                    panic!("budget below planned peak cannot admit as planned")
                }
            }
        }
        None => {
            // Acceptable only if even one-column batches cannot fit.
            let r = report.rejected().unwrap();
            assert!(
                matches!(r, spgemm_core::serve::RejectReason::NeverFits { .. }),
                "unexpected rejection: {r}"
            );
        }
    }
}
