//! Cross-family conformance: the 1.5D ColA/InnerABC SpMM drivers must
//! produce output bit-identical to 2D SUMMA for the same sparse-dense
//! product, across semirings, replication factors, and backends.
//!
//! Exactness discipline: comparisons use semirings whose arithmetic is
//! order-independent at the tested values — `u64`/small-integer-`f64`
//! plus-times (exact adds) and idempotent min-plus — so "bit-identical"
//! is well-defined even though the families accumulate in different
//! orders. `SPGEMM_CHECK=1` in CI turns on the collective-protocol
//! checker, vetting the new ring/team communicators.

use spgemm_core::{run_spgemm, run_spmm, AlgorithmFamily, BackendKind, CoreError, RunConfig};
use spgemm_sparse::gen::er_random;
use spgemm_sparse::semiring::{MinPlusF64, PlusTimesF64, PlusTimesU64};
use spgemm_sparse::DenseBlock;

fn small_int_dense(nrows: usize, ncols: usize, seed: u64) -> DenseBlock<f64> {
    DenseBlock::from_fn(nrows, ncols, |i, j| {
        ((i * 31 + j * 17 + seed as usize) % 7) as f64 + 1.0
    })
}

fn cfg_for(p: usize, family: AlgorithmFamily, backend: BackendKind) -> RunConfig {
    let mut cfg = RunConfig::new(p, 1);
    cfg.algorithm = family;
    cfg.backend = backend;
    cfg
}

/// All 1.5D members valid at `p = 16` that the suite sweeps.
fn families_under_test() -> Vec<AlgorithmFamily> {
    vec![
        AlgorithmFamily::ColA15 { c: 1 },
        AlgorithmFamily::ColA15 { c: 2 },
        AlgorithmFamily::ColA15 { c: 4 },
        AlgorithmFamily::InnerAbc15 { c: 1 },
        AlgorithmFamily::InnerAbc15 { c: 2 },
        AlgorithmFamily::InnerAbc15 { c: 4 },
    ]
}

#[test]
fn families_match_summa2d_u64_exact() {
    let p = 16;
    let a = er_random::<PlusTimesU64>(37, 29, 4, 901).map(|_| 3u64);
    let b = DenseBlock::from_fn(29, 11, |i, j| ((i * 13 + j * 7) % 5) as u64);
    let reference = run_spmm::<PlusTimesU64>(
        &cfg_for(p, AlgorithmFamily::Summa2d, BackendKind::Simgrid),
        &a,
        &b,
    )
    .unwrap()
    .c
    .unwrap();
    for family in families_under_test() {
        for backend in [BackendKind::Simgrid, BackendKind::Native { threads: 2 }] {
            let out =
                run_spmm::<PlusTimesU64>(&cfg_for(p, family, backend), &a, &b).unwrap();
            assert_eq!(out.algorithm, family);
            assert_eq!(
                out.c.as_ref().unwrap(),
                &reference,
                "{} on {} disagrees with summa2d",
                family.label(),
                backend.name()
            );
        }
    }
}

#[test]
fn families_match_summa2d_f64_small_ints() {
    let p = 16;
    let a = er_random::<PlusTimesF64>(40, 32, 3, 902).map(|v| (v * 4.0).round() + 1.0);
    let b = small_int_dense(32, 9, 3);
    let reference = run_spmm::<PlusTimesF64>(
        &cfg_for(p, AlgorithmFamily::Summa2d, BackendKind::Simgrid),
        &a,
        &b,
    )
    .unwrap()
    .c
    .unwrap();
    for family in families_under_test() {
        let out = run_spmm::<PlusTimesF64>(
            &cfg_for(p, family, BackendKind::Simgrid),
            &a,
            &b,
        )
        .unwrap();
        assert_eq!(
            out.c.as_ref().unwrap(),
            &reference,
            "{} disagrees with summa2d",
            family.label()
        );
    }
}

#[test]
fn families_match_summa2d_minplus_idempotent() {
    // Min-plus: ⊕ = min is idempotent and order-independent; ⊗ = + is
    // exact on small integers. The densified zero is +∞.
    let p = 16;
    let a = er_random::<MinPlusF64>(30, 30, 4, 903).map(|v| (v * 9.0).round());
    let b = DenseBlock::from_fn(30, 8, |i, j| ((i * 11 + j * 5) % 13) as f64);
    let reference = run_spmm::<MinPlusF64>(
        &cfg_for(p, AlgorithmFamily::Summa2d, BackendKind::Simgrid),
        &a,
        &b,
    )
    .unwrap()
    .c
    .unwrap();
    for family in families_under_test() {
        let out =
            run_spmm::<MinPlusF64>(&cfg_for(p, family, BackendKind::Simgrid), &a, &b).unwrap();
        assert_eq!(
            out.c.as_ref().unwrap(),
            &reference,
            "{} disagrees with summa2d",
            family.label()
        );
    }
}

#[test]
fn spgemm_entry_routes_15d_and_matches() {
    // run_spgemm with a 1.5D family densifies B honestly and re-sparsifies
    // the product; the result must match the batched pipeline exactly.
    let a = er_random::<PlusTimesU64>(24, 24, 3, 904).map(|_| 2u64);
    let b = er_random::<PlusTimesU64>(24, 24, 3, 905).map(|_| 1u64);
    let reference = run_spgemm::<PlusTimesU64>(&RunConfig::new(16, 4), &a, &b)
        .unwrap()
        .c
        .unwrap();
    let mut cfg = RunConfig::new(16, 1);
    cfg.algorithm = AlgorithmFamily::ColA15 { c: 2 };
    let out = run_spgemm::<PlusTimesU64>(&cfg, &a, &b).unwrap();
    assert!(out.c.unwrap().eq_modulo_order(&reference));
    assert_eq!(out.nbatches, 1);
}

#[test]
fn awkward_shapes_and_degenerate_stripes() {
    // d < p leaves some ranks with empty stripes; n_inner < t leaves some
    // A blocks empty. Both must still conform.
    let p = 16;
    let a = er_random::<PlusTimesU64>(11, 7, 2, 906).map(|_| 5u64);
    let b = DenseBlock::from_fn(7, 3, |i, j| ((i + j) % 4) as u64);
    let reference = run_spmm::<PlusTimesU64>(
        &cfg_for(p, AlgorithmFamily::Summa2d, BackendKind::Simgrid),
        &a,
        &b,
    )
    .unwrap()
    .c
    .unwrap();
    for family in families_under_test() {
        let out =
            run_spmm::<PlusTimesU64>(&cfg_for(p, family, BackendKind::Simgrid), &a, &b).unwrap();
        assert_eq!(
            out.c.as_ref().unwrap(),
            &reference,
            "{} fails on degenerate shapes",
            family.label()
        );
    }
}

#[test]
fn shift_traffic_falls_with_innerabc_replication() {
    // The cost story in one assert pair: InnerABC's per-rank A-Shift
    // bytes shrink ~c²-fold, while ColA's stay ≈ flat (its replication
    // buys latency rounds, not bytes).
    use spgemm_simgrid::Step;
    let p = 16;
    let a = er_random::<PlusTimesU64>(64, 64, 6, 907).map(|_| 1u64);
    let b = DenseBlock::from_fn(64, 16, |i, j| ((i + j) % 3) as u64);
    let shift_bytes = |family: AlgorithmFamily| {
        run_spmm::<PlusTimesU64>(&cfg_for(p, family, BackendKind::Simgrid), &a, &b)
            .unwrap()
            .max
            .bytes_of(Step::AShift)
    };
    let iabc1 = shift_bytes(AlgorithmFamily::InnerAbc15 { c: 1 });
    let iabc4 = shift_bytes(AlgorithmFamily::InnerAbc15 { c: 4 });
    assert!(
        (iabc4 as f64) < iabc1 as f64 / 4.0,
        "InnerABC c=4 should cut shift bytes ≳4x: {iabc1} -> {iabc4}"
    );
    let cola1 = shift_bytes(AlgorithmFamily::ColA15 { c: 1 });
    let cola4 = shift_bytes(AlgorithmFamily::ColA15 { c: 4 });
    assert!(
        cola4 as f64 > cola1 as f64 / 2.0,
        "ColA shift bytes should stay near-flat in c: {cola1} -> {cola4}"
    );
}

#[test]
fn budget_admission_counts_replication() {
    // A budget that fits c=1 can be blown by the replicated dense stripes
    // + A blocks at c=4; the driver must refuse admission, naming bytes.
    use spgemm_core::MemoryBudget;
    let p = 16;
    let a = er_random::<PlusTimesU64>(256, 256, 8, 908).map(|_| 1u64);
    let b = DenseBlock::from_fn(256, 64, |i, j| ((i + j) % 3) as u64);
    let mut cfg = cfg_for(p, AlgorithmFamily::InnerAbc15 { c: 4 }, BackendKind::Simgrid);
    let fit = run_spmm::<PlusTimesU64>(&cfg, &a, &b).unwrap();
    let worst = *fit.peak_bytes.iter().max().unwrap();
    cfg.budget = MemoryBudget::new(worst * p / 2);
    match run_spmm::<PlusTimesU64>(&cfg, &a, &b) {
        Err(CoreError::InputsExceedMemory {
            needed_bytes,
            budget_bytes,
        }) => {
            assert!(needed_bytes > budget_bytes);
        }
        other => panic!("expected admission failure, got {other:?}"),
    }
}

#[test]
fn non_15d_rejected_by_driver_and_bad_c_by_harness() {
    let a = er_random::<PlusTimesU64>(8, 8, 2, 909).map(|_| 1u64);
    let b = DenseBlock::from_fn(8, 4, |i, j| (i + j) as u64);
    // c that does not divide p fails with an error naming the pair.
    let cfg = cfg_for(6, AlgorithmFamily::ColA15 { c: 4 }, BackendKind::Simgrid);
    let err = run_spmm::<PlusTimesU64>(&cfg, &a, &b).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("p=6") && msg.contains("c=4"), "{msg}");
    // Dimension mismatch caught before any cluster spawns.
    let bad_b = DenseBlock::from_fn(9, 4, |_, _| 0u64);
    let cfg = cfg_for(4, AlgorithmFamily::ColA15 { c: 2 }, BackendKind::Simgrid);
    assert!(matches!(
        run_spmm::<PlusTimesU64>(&cfg, &a, &bad_b),
        Err(CoreError::Config(_))
    ));
}

#[test]
fn summa_families_answer_spmm_too() {
    // The SUMMA side of run_spmm: sparsify-multiply-densify equals the
    // dense reference from the 1.5D side.
    let p = 16;
    let a = er_random::<PlusTimesU64>(20, 18, 3, 910).map(|_| 4u64);
    let b = DenseBlock::from_fn(18, 6, |i, j| ((i * 3 + j) % 5) as u64);
    let via_cola = run_spmm::<PlusTimesU64>(
        &cfg_for(p, AlgorithmFamily::ColA15 { c: 2 }, BackendKind::Simgrid),
        &a,
        &b,
    )
    .unwrap()
    .c
    .unwrap();
    let via_3d = run_spmm::<PlusTimesU64>(
        &cfg_for(p, AlgorithmFamily::Summa3dBatched, BackendKind::Simgrid),
        &a,
        &b,
    )
    .unwrap()
    .c
    .unwrap();
    assert_eq!(via_cola, via_3d);
}

#[test]
fn discard_output_returns_none_everywhere() {
    let a = er_random::<PlusTimesU64>(16, 16, 2, 911).map(|_| 1u64);
    let b = DenseBlock::from_fn(16, 4, |i, j| (i * j % 3) as u64);
    let mut cfg = cfg_for(8, AlgorithmFamily::ColA15 { c: 2 }, BackendKind::Simgrid);
    cfg.discard_output = true;
    let out = run_spmm::<PlusTimesU64>(&cfg, &a, &b).unwrap();
    assert!(out.c.is_none());
    assert!(out.peak_bytes.iter().all(|&pk| pk > 0));
}
