//! Property tests for the cross-iteration operand cache: an
//! [`IterSession`] run with fetch caching enabled must produce
//! **bit-identical** iterates to the same session run with caching
//! disabled — for every semiring, grid shape, exchange mode, and
//! adversarial pruning pattern (prune nothing / prune everything /
//! alternate columns). The cache is a pure communication optimization;
//! any numeric difference, however small, is a bug.
//!
//! Run with `SPGEMM_CHECK=1` the same suite doubles as a collective
//! protocol check: cache hits replace fetch payloads but must keep the
//! send/recv pairing of every round intact.

use proptest::prelude::*;
use spgemm_core::batched::BatchConfig;
use spgemm_core::{CoreError, ExchangeMode, IterSession, SessionIterStats};
use spgemm_simgrid::{run_ranks, Grid3D, Machine};
use spgemm_sparse::gen::{er_random, RandValue};
use spgemm_sparse::semiring::{MinPlusF64, PlusTimesF64, PlusTimesU64, Semiring};
use spgemm_sparse::{CscMatrix, Triples};
use std::fmt::Debug;
use std::sync::Arc;

/// Valid `(p, l)` grids the suite sweeps.
const GRIDS: [(usize, usize); 4] = [(1, 1), (4, 1), (4, 4), (16, 4)];

/// Adversarial pruning patterns applied between iterations.
#[derive(Clone, Copy, Debug)]
enum Prune {
    /// Keep every entry — the iterate only ever grows denser.
    Nothing,
    /// Drop every entry — the iterate collapses to empty after step 1 and
    /// every later fetch round takes the zero-row path.
    Everything,
    /// Drop all entries in odd global columns — half the columns are
    /// invalidated every iteration, the other half can cache.
    OddCols,
}

const PRUNES: [Prune; 3] = [Prune::Nothing, Prune::Everything, Prune::OddCols];

fn apply_prune<T: Copy>(m: &mut CscMatrix<T>, global_cols: &[u32], prune: Prune) {
    match prune {
        Prune::Nothing => {}
        Prune::Everything => m.retain(|_, _, _| false),
        Prune::OddCols => {
            let cols = global_cols.to_vec();
            m.retain(|_, j, _| cols[j].is_multiple_of(2));
        }
    }
}

/// Run `iters` session steps, gathering the iterate to root after each.
/// Returns the per-iteration gathered iterates and per-rank stats.
fn run_session_iters<S: Semiring>(
    global: &CscMatrix<S::T>,
    p: usize,
    l: usize,
    exchange: ExchangeMode,
    cache: bool,
    iters: usize,
    prune: Prune,
) -> (Vec<CscMatrix<S::T>>, Vec<Vec<SessionIterStats>>) {
    let g = Arc::new(global.clone());
    let results = run_ranks(p, Machine::knl_mini(), move |rank| {
        let grid = Grid3D::new(rank, l);
        let cfg = BatchConfig {
            exchange,
            ..BatchConfig::default()
        };
        let mut sess = IterSession::<S>::new(
            rank,
            &grid,
            (rank.rank() == 0).then(|| Arc::clone(&g)),
            cfg,
            cache,
        )?;
        let mut gathered = Vec::with_capacity(iters);
        let mut stats = Vec::with_capacity(iters);
        for _ in 0..iters {
            let st = sess.step(rank, &grid, |_, mut out| {
                apply_prune(&mut out.piece.local, &out.piece.global_cols, prune);
                Some(out.piece)
            })?;
            stats.push(st);
            gathered.push(sess.gather(rank, &grid));
        }
        Ok::<_, CoreError>((gathered, stats))
    });
    let mut root_gathers = None;
    let mut all_stats = Vec::with_capacity(p);
    for (i, r) in results.into_iter().enumerate() {
        let (g, st) = r.expect("session run must succeed");
        if i == 0 {
            root_gathers = Some(g);
        }
        all_stats.push(st);
    }
    let iterates: Vec<CscMatrix<S::T>> = root_gathers
        .expect("rank 0 ran")
        .into_iter()
        .map(|o| o.expect("root gathers the iterate"))
        .collect();
    (iterates, all_stats)
}

/// Structural + value equality, column by column — no reordering slack,
/// no tolerance.
fn bit_identical<T: Copy + PartialEq + Debug>(a: &CscMatrix<T>, b: &CscMatrix<T>) -> bool {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return false;
    }
    (0..a.ncols()).all(|j| a.col(j) == b.col(j))
}

#[allow(clippy::too_many_arguments)]
fn check_semiring<S: Semiring>(
    n: usize,
    deg: usize,
    seed: u64,
    p: usize,
    l: usize,
    exchange: ExchangeMode,
    iters: usize,
    prune: Prune,
) where
    S::T: RandValue + PartialEq + Debug,
{
    let a = er_random::<S>(n, n, deg, seed);
    let (cached, _) = run_session_iters::<S>(&a, p, l, exchange, true, iters, prune);
    let (uncached, _) = run_session_iters::<S>(&a, p, l, exchange, false, iters, prune);
    assert_eq!(cached.len(), uncached.len());
    for (t, (c, u)) in cached.iter().zip(&uncached).enumerate() {
        assert!(
            bit_identical(c, u),
            "iteration {} diverged: p={} l={} {:?} {:?} n={} deg={} seed={}",
            t + 1,
            p,
            l,
            exchange,
            prune,
            n,
            deg,
            seed
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Iterations ≥ 2 of a cached session — the ones that can be answered
    /// from memoized fetch state — are bit-identical to an uncached run,
    /// across semirings, grids, exchange modes, and pruning patterns.
    #[test]
    fn cached_iterations_match_uncached_bit_for_bit(
        gi in 0usize..GRIDS.len(),
        n in 8usize..40,
        deg in 1usize..4,
        seed in 0u64..1_000,
        iters in 2usize..4,
        pi in 0usize..PRUNES.len(),
        ex in 0usize..2,
        sem in 0usize..3,
    ) {
        let (p, l) = GRIDS[gi];
        let exchange = if ex == 0 { ExchangeMode::DenseBcast } else { ExchangeMode::SparseFetch };
        let prune = PRUNES[pi];
        match sem {
            0 => check_semiring::<PlusTimesF64>(n, deg, seed, p, l, exchange, iters, prune),
            1 => check_semiring::<PlusTimesU64>(n, deg, seed, p, l, exchange, iters, prune),
            _ => check_semiring::<MinPlusF64>(n, deg, seed, p, l, exchange, iters, prune),
        }
    }
}

/// The bit-identity property must not be vacuous: on an idempotent
/// iterate (`M² = M` exactly — every column projects onto row 0) the
/// cached run has to *actually hit* from iteration 2 on, ship zero
/// re-fetches, and mark zero columns dirty, while still gathering the
/// fixed point bit-for-bit every iteration.
#[test]
fn cache_hits_on_idempotent_projection_without_changing_the_iterate() {
    let n = 16;
    let mut t = Triples::with_capacity(n, n, n);
    for j in 0..n as u32 {
        t.push(0, j, 1.0);
    }
    let m = t.to_csc();
    let (iterates, stats) =
        run_session_iters::<PlusTimesF64>(&m, 4, 1, ExchangeMode::SparseFetch, true, 3, Prune::Nothing);
    for (t, it) in iterates.iter().enumerate() {
        assert!(bit_identical(it, &m), "iteration {} left the fixed point", t + 1);
    }
    let per_iter =
        |t: usize| stats.iter().map(|s| s[t].cache).fold((0u64, 0u64), |(h, mi), c| (h + c.hits, mi + c.misses));
    let (h0, m0) = per_iter(0);
    assert_eq!(h0, 0, "cold iteration cannot hit");
    assert!(m0 > 0, "cold iteration must fetch");
    for t in 1..3 {
        let (h, mi) = per_iter(t);
        assert!(h > 0, "warm iteration {} must hit the cache", t + 1);
        assert_eq!(mi, 0, "warm iteration {} must not re-fetch", t + 1);
        for s in &stats {
            assert_eq!(s[t].dirty_cols, 0, "fixed point marked columns dirty");
        }
    }
}
