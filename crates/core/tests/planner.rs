//! Property and integration tests for the planner subsystem: probe
//! accuracy against exact symbolic accounting, Eq. 2 consistency of the
//! chosen batch count, budget compliance of the winner, and end-to-end
//! `LayerChoice::Auto` runs.

use proptest::prelude::*;
use spgemm_core::planner::{plan, BindingConstraint, PlannerConfig, ProbeConfig};
use spgemm_core::{AlgorithmFamily, MemoryBudget, RunConfig};
use spgemm_core::harness::run_spgemm;
use spgemm_simgrid::Machine;
use spgemm_sparse::gen::{er_random, rmat};
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::{CscMatrix, DenseBlock};

const P: usize = 16;

fn planner_cfg(budget: MemoryBudget) -> PlannerConfig {
    PlannerConfig::new(Machine::knl_mini(), budget)
}

/// The probe's `flops` estimate vs the exact distributed Symbolic3D
/// accounting a real run performs, on ER and R-MAT inputs: equality when
/// the probe sees every column, tolerance when it samples.
#[test]
fn probe_tracks_exact_symbolic3d_on_er_and_rmat() {
    let er_a = er_random::<PlusTimesF64>(256, 256, 6, 91);
    let er_b = er_random::<PlusTimesF64>(256, 256, 6, 92);
    let rm = rmat::<PlusTimesF64>(8, 6, None, false, 93); // 256², skewed
    for (name, a, b) in [
        ("er", &er_a, &er_b),
        ("rmat", &rm, &rm),
    ] {
        let mut cfg = RunConfig::new(P, 4);
        cfg.machine = Machine::knl_mini();
        cfg.discard_output = true;
        let out = run_spgemm::<PlusTimesF64>(&cfg, a, b).unwrap();
        let sym = out.symbolic.expect("unforced run performs Symbolic3D");

        let exact = spgemm_core::planner::probe(a, b, &ProbeConfig::exact()).unwrap();
        assert_eq!(exact.flops, sym.flops, "{name}: exact probe != Symbolic3D flops");

        let sampled_cfg = ProbeConfig {
            sample_fraction: 0.3,
            min_cols: 48,
            max_cols: 4096,
            seed: 11,
        };
        let sampled = spgemm_core::planner::probe(a, b, &sampled_cfg).unwrap();
        assert!(sampled.cols.len() < a.ncols(), "{name}: should subsample");
        let fl = sampled.flops as f64 / sym.flops as f64;
        assert!((0.5..2.0).contains(&fl), "{name}: sampled flops ratio {fl}");
        let nc = sampled.nnz_c as f64 / exact.nnz_c as f64;
        assert!((0.5..2.0).contains(&nc), "{name}: sampled nnz(C) ratio {nc}");
    }
}

/// The predictor's peak-memory estimate (which drives `maxnnzC` batching)
/// stays within a small factor of the measured per-rank peak.
#[test]
fn predicted_peak_tracks_measured_peak() {
    let a = er_random::<PlusTimesF64>(256, 256, 8, 94);
    let b = er_random::<PlusTimesF64>(256, 256, 8, 95);
    let mut pcfg = planner_cfg(MemoryBudget::unlimited());
    pcfg.probe = ProbeConfig::exact();
    pcfg.layers = Some(vec![4]);
    let rep = plan(P, &a, &b, &pcfg).unwrap();
    let pred = rep.winner().unwrap();
    assert_eq!(pred.batches, 1, "unlimited budget needs one batch");

    let mut cfg = RunConfig::new(P, 4);
    cfg.machine = Machine::knl_mini();
    cfg.kernels = pred.candidate.kernels;
    cfg.overlap = pred.candidate.overlap;
    cfg.discard_output = true;
    let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &b).unwrap();
    let measured = *out.peak_bytes.iter().max().unwrap();
    let ratio = pred.peak_bytes_per_proc as f64 / measured as f64;
    assert!(
        (0.25..4.0).contains(&ratio),
        "predicted peak {} vs measured {} (ratio {ratio})",
        pred.peak_bytes_per_proc,
        measured
    );
}

/// Every feasible candidate's chosen `b` is at least the Eq. 2 analytic
/// lower bound, and the winner's predicted peak respects the budget.
#[test]
fn chosen_batches_respect_eq2_and_budget() {
    let a = er_random::<PlusTimesF64>(192, 192, 10, 96);
    let b = er_random::<PlusTimesF64>(192, 192, 10, 97);
    let inputs = (a.nnz() + b.nnz()) * 24;
    for mult in [3usize, 6, 12] {
        let budget = MemoryBudget::new(inputs * mult);
        let mut pcfg = planner_cfg(budget);
        pcfg.probe = ProbeConfig::exact();
        let rep = plan(P, &a, &b, &pcfg).unwrap();
        for c in rep.ranked.iter().filter(|c| c.feasible()) {
            assert!(
                c.batches >= c.eq2_bound,
                "mult={mult} {}: b={} below Eq.2 bound {}",
                c.candidate.label(),
                c.batches,
                c.eq2_bound
            );
        }
        if let Some(w) = rep.winner() {
            assert!(
                w.peak_bytes_per_proc <= budget.per_process(P),
                "mult={mult}: winner peak {} over per-process budget {}",
                w.peak_bytes_per_proc,
                budget.per_process(P)
            );
        }
    }
}

/// Running the planner's choice end-to-end stays within the budget per
/// Symbolic3D's exact accounting, and the plan is recorded in the output.
#[test]
fn auto_plan_runs_within_budget_end_to_end() {
    let a = er_random::<PlusTimesF64>(192, 192, 8, 98);
    let b = er_random::<PlusTimesF64>(192, 192, 8, 99);
    let inputs = (a.nnz() + b.nnz()) * 24;
    let budget = MemoryBudget::new(inputs * 4);
    let mut cfg = RunConfig::auto(P);
    cfg.machine = Machine::knl_mini();
    cfg.budget = budget;
    cfg.discard_output = true;
    let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &b).unwrap();
    let plan_report = out.plan.as_ref().expect("auto records its plan");
    let winner = plan_report.winner().expect("feasible under 4x-inputs budget");
    assert_eq!(out.layers, winner.candidate.layers);
    let per_proc = budget.per_process(P);
    for (rank, &peak) in out.peak_bytes.iter().enumerate() {
        assert!(
            peak <= per_proc,
            "rank {rank} peaked at {peak} over {per_proc} (b={})",
            out.nbatches
        );
    }
}

/// An infeasible fixed grid is rejected with an error naming `(p, l)`
/// before any rank spawns.
#[test]
fn degenerate_fixed_grid_rejected() {
    let a = er_random::<PlusTimesF64>(32, 32, 3, 100);
    let cfg = RunConfig::new(P, 3);
    let err = run_spgemm::<PlusTimesF64>(&cfg, &a, &a).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("p=16") && msg.contains("l=3"), "{msg}");
}

/// Cross-family auto-planning, sparse-dense side: multiplying a sparse A
/// against a tall-thin dense B, the stationary 1.5D families beat batched
/// SUMMA (which must broadcast the heavy densified-B operand every stage
/// and run a symbolic pass the 1.5D schedule doesn't need).
#[test]
fn family_sweep_picks_15d_on_sparse_dense() {
    let a = er_random::<PlusTimesF64>(4096, 4096, 4, 201);
    let b = DenseBlock::from_fn(4096, 16, |i, j| ((i * 7 + j) % 5) as f64 + 1.0)
        .to_csc::<PlusTimesF64>();
    let mut pcfg = planner_cfg(MemoryBudget::unlimited());
    pcfg.families = AlgorithmFamily::sweep(P);
    let rep = plan(P, &a, &b, &pcfg).unwrap();
    let w = rep.winner().unwrap();
    assert!(
        w.candidate.family.is_15d(),
        "sparse-dense winner should be 1.5D, got {}\n{}",
        w.candidate.label(),
        rep.to_table()
    );
    // The report can say why SUMMA lost.
    assert!(rep.to_table().contains("winner:"));
}

/// Cross-family auto-planning, sparse-sparse side: on a Fig. 3-style
/// squared ER matrix under a real memory budget, the 1.5D families'
/// dense replicated stripes blow the per-process budget (they cannot
/// batch), so batched 3D SUMMA wins.
#[test]
fn family_sweep_picks_batched_summa_on_constrained_sparse_sparse() {
    let a = er_random::<PlusTimesF64>(512, 512, 8, 202);
    let b = er_random::<PlusTimesF64>(512, 512, 8, 203);
    let inputs = (a.nnz() + b.nnz()) * 24;
    let mut pcfg = planner_cfg(MemoryBudget::new(inputs * 6));
    pcfg.probe = ProbeConfig::exact();
    pcfg.families = AlgorithmFamily::sweep(P);
    let rep = plan(P, &a, &b, &pcfg).unwrap();
    let w = rep.winner().expect("6x-inputs budget should be plannable");
    assert_eq!(
        w.candidate.family,
        AlgorithmFamily::Summa3dBatched,
        "constrained sparse-sparse winner should be batched SUMMA\n{}",
        rep.to_table()
    );
    // Every 1.5D candidate is sunk by replication memory, and the report
    // names the budget in its note.
    for c in rep.ranked.iter().filter(|c| c.candidate.family.is_15d()) {
        assert!(!c.feasible(), "{} should be infeasible", c.candidate.label());
        assert!(c.note.contains("bytes/process"), "{}", c.note);
    }
}

/// An invalid replication factor requested explicitly fails the plan with
/// an error naming `(p, c)`, mirroring the degenerate-grid errors.
#[test]
fn bad_repl_factor_rejected_by_planner() {
    let a = er_random::<PlusTimesF64>(64, 64, 4, 204);
    let mut pcfg = planner_cfg(MemoryBudget::unlimited());
    pcfg.families = vec![AlgorithmFamily::ColA15 { c: 3 }];
    let err = plan(P, &a, &a, &pcfg).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("p=16") && msg.contains("c=3"), "{msg}");
}

fn small_er(n: usize, deg: usize, seed: u64) -> CscMatrix<f64> {
    er_random::<PlusTimesF64>(n, n, deg, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary small operands and budgets, every feasible candidate
    /// satisfies `b ≥ Eq. 2` and `peak ≤ budget`, and a feasible winner's
    /// configuration actually runs within budget.
    #[test]
    fn planner_invariants_hold(
        n in 48usize..160,
        deg in 2usize..8,
        seed in 0u64..1000,
        mult in 2usize..16,
    ) {
        let a = small_er(n, deg, seed);
        let b = small_er(n, deg, seed.wrapping_add(7777));
        let inputs = (a.nnz() + b.nnz()) * 24;
        let budget = MemoryBudget::new(inputs * mult);
        let pcfg = planner_cfg(budget);
        let rep = plan(P, &a, &b, &pcfg).unwrap();
        let per_proc = budget.per_process(P);
        for c in rep.ranked.iter().filter(|c| c.feasible()) {
            prop_assert!(c.batches >= 1);
            prop_assert!(c.batches >= c.eq2_bound);
            prop_assert!(c.batches <= b.ncols());
            prop_assert!(c.peak_bytes_per_proc <= per_proc);
            prop_assert!(c.total_s.is_finite() && c.total_s >= 0.0);
            if c.batches == 1 {
                prop_assert_eq!(c.constraint, BindingConstraint::SingleBatch);
            }
        }
    }
}
