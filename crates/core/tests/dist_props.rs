//! Property tests for the distribution layers: 3D scatter → gather
//! round-trips and `transpose_to_bstyle` slice conformance over every
//! valid `(p, l)` pair, plus the 1.5D dense-stripe layout — stripe
//! partition round-trips and full scatter → gather through the ColA /
//! InnerABC drivers (`C = I·B` must reproduce `B` bit-for-bit) — over
//! arbitrary (including non-square and degenerate) matrix shapes.

use proptest::prelude::*;
use spgemm_core::dist::{
    gather_dist, scatter, sub_block, transpose_to_bstyle, DistKind,
};
use spgemm_core::{run_spmm, AlgorithmFamily, RunConfig};
use spgemm_simgrid::grid::valid_layer_counts;
use spgemm_simgrid::{run_ranks, Grid3D, Machine};
use spgemm_sparse::gen::er_random;
use spgemm_sparse::ops::block_range;
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::{CscMatrix, DenseBlock};
use std::sync::Arc;

const PS: [usize; 6] = [1, 4, 8, 9, 12, 16];

/// Pick a process count and one of its valid layer counts.
fn grid_pair(pi: usize, li: usize) -> (usize, usize) {
    let p = PS[pi % PS.len()];
    let ls = valid_layer_counts(p);
    (p, ls[li % ls.len()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `scatter` then `gather_pieces` (via `gather_dist`) reproduces the
    /// global matrix exactly for both distribution styles, any valid
    /// grid, and shapes the grid over-partitions (`n < pr·l`).
    #[test]
    fn scatter_gather_roundtrips(
        pi in 0usize..6,
        li in 0usize..4,
        nrows in 1usize..60,
        ncols in 1usize..60,
        deg in 1usize..4,
        seed in 0u64..1_000,
        b_style in 0usize..2,
    ) {
        let (p, l) = grid_pair(pi, li);
        let kind = if b_style == 1 { DistKind::BStyle } else { DistKind::AStyle };
        let global = er_random::<PlusTimesF64>(nrows, ncols, deg, seed);
        let g2 = global.clone();
        let results = run_ranks(p, Machine::knl_mini(), move |rank| {
            let grid = Grid3D::new(rank, l);
            let payload = (rank.rank() == 0).then(|| Arc::new(g2.clone()));
            let dm = scatter(rank, &grid, kind, payload);
            gather_dist(rank, &grid, &dm)
        });
        let back = results[0].clone().expect("root gathers");
        prop_assert!(
            global.eq_modulo_order(&back),
            "roundtrip failed: p={p} l={l} {kind:?} {nrows}x{ncols}"
        );
    }

    /// `transpose_to_bstyle` hands every rank the `(i, k)` row slice that
    /// is conformant with A's `(s, k)` column slices — the requirement
    /// for stage `s` of SUMMA inside layer `k` — and the gathered result
    /// equals the serial transpose, for non-square shapes and every
    /// valid `(p, l)`.
    #[test]
    fn transpose_to_bstyle_slices_conform(
        pi in 0usize..6,
        li in 0usize..4,
        nrows in 1usize..60,
        ncols in 1usize..60,
        deg in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let (p, l) = grid_pair(pi, li);
        let global = er_random::<PlusTimesF64>(nrows, ncols, deg, seed);
        let g2 = global.clone();
        let results = run_ranks(p, Machine::knl_mini(), move |rank| {
            let grid = Grid3D::new(rank, l);
            let payload = (rank.rank() == 0).then(|| Arc::new(g2.clone()));
            let a = scatter(rank, &grid, DistKind::AStyle, payload);
            let at = transpose_to_bstyle(rank, &grid, &a);
            assert_eq!(at.kind, DistKind::BStyle);
            assert_eq!((at.grows, at.gcols), (a.gcols, a.grows));
            // B-style row slice (i, k) of Aᵀ is the hierarchical
            // sub-block of the inner dimension — identical to the
            // column slice A's owner (j=i) holds, so stage pieces
            // multiply conformantly.
            let rr = at.row_range(&grid);
            assert_eq!(
                rr,
                sub_block(at.grows, grid.pr, grid.i, grid.l, grid.k),
                "row slice mismatch at rank ({},{},{})",
                grid.i, grid.j, grid.k
            );
            // Local piece dimensions agree with the claimed global slices.
            assert_eq!(at.local.nrows(), rr.len());
            assert_eq!(at.local.ncols(), at.col_range(&grid).len());
            gather_dist(rank, &grid, &at)
        });
        let back = results[0].clone().expect("root gathers");
        let expect = spgemm_sparse::ops::transpose(&global);
        prop_assert!(
            back.eq_modulo_order(&expect),
            "transpose mismatch: p={p} l={l} {nrows}x{ncols}"
        );
    }
}

// ---------------------------------------------------------------------------
// 1.5D dense-stripe distribution.
// ---------------------------------------------------------------------------

/// The 1.5D world sizes and the families valid at each — including
/// non-square `p` no SUMMA grid covers.
const P15: [usize; 3] = [4, 12, 16];

fn family_15d(pi: usize, fi: usize) -> (usize, AlgorithmFamily) {
    let p = P15[pi % P15.len()];
    let fams: Vec<AlgorithmFamily> = AlgorithmFamily::sweep(p)
        .into_iter()
        .filter(|f| f.is_15d())
        .collect();
    (p, fams[fi % fams.len()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Striping a dense block by `block_range` and reassembling the
    /// column slices reproduces it exactly — including over-partitioned
    /// widths (`ncols < t`, some stripes empty). This is the stationary
    /// `B`/`C` layout every 1.5D rank slices out after the scatter
    /// broadcast.
    #[test]
    fn dense_stripe_partition_roundtrips(
        nrows in 0usize..40,
        ncols in 0usize..40,
        t in 1usize..20,
        seed in 0u64..1_000,
    ) {
        let block = DenseBlock::from_fn(nrows, ncols, |i, j| {
            ((i * 31 + j * 17 + seed as usize) % 97) as f64
        });
        let mut back = DenseBlock::new_fill(nrows, ncols, -1.0f64);
        let mut covered = 0usize;
        for s in 0..t {
            let r = block_range(ncols, t, s);
            let stripe = block.col_slice(r.clone());
            prop_assert_eq!(stripe.nrows(), nrows);
            prop_assert_eq!(stripe.ncols(), r.len());
            for (jj, j) in r.clone().enumerate() {
                back.col_mut(j).copy_from_slice(stripe.col(jj));
            }
            covered += r.len();
        }
        prop_assert_eq!(covered, ncols, "stripes must partition the columns");
        prop_assert_eq!(back.data(), block.data());
    }

    /// Scatter → gather through the full 1.5D drivers: `C = I·B` must
    /// reproduce `B` bit-for-bit for every 1.5D family, replication
    /// factor, and width — the dense operand is broadcast, sliced into
    /// stationary stripes, multiplied by identity blocks, reduced
    /// (InnerABC) and gathered back to the root.
    #[test]
    fn dense_identity_spmm_roundtrips(
        pi in 0usize..3,
        fi in 0usize..8,
        n in 1usize..40,
        d in 1usize..24,
        seed in 0u64..1_000,
    ) {
        let (p, family) = family_15d(pi, fi);
        let a = CscMatrix::<f64>::identity(n);
        let b = DenseBlock::from_fn(n, d, |i, j| {
            ((i * 13 + j * 29 + seed as usize) % 11) as f64
        });
        let mut cfg = RunConfig::new(p, 1);
        cfg.algorithm = family;
        let out = run_spmm::<PlusTimesF64>(&cfg, &a, &b).unwrap();
        let c = out.c.expect("root gathers the product");
        prop_assert_eq!(
            c.data(),
            b.data(),
            "I·B != B: p={} {} {}x{}",
            p,
            family.label(),
            n,
            d
        );
    }
}
