//! Property tests for the 3D distribution layer: scatter → gather
//! round-trips and `transpose_to_bstyle` slice conformance, over every
//! valid `(p, l)` pair of several process counts and arbitrary
//! (including non-square and degenerate) matrix shapes.

use proptest::prelude::*;
use spgemm_core::dist::{
    gather_dist, scatter, sub_block, transpose_to_bstyle, DistKind,
};
use spgemm_simgrid::grid::valid_layer_counts;
use spgemm_simgrid::{run_ranks, Grid3D, Machine};
use spgemm_sparse::gen::er_random;
use spgemm_sparse::semiring::PlusTimesF64;
use std::sync::Arc;

const PS: [usize; 6] = [1, 4, 8, 9, 12, 16];

/// Pick a process count and one of its valid layer counts.
fn grid_pair(pi: usize, li: usize) -> (usize, usize) {
    let p = PS[pi % PS.len()];
    let ls = valid_layer_counts(p);
    (p, ls[li % ls.len()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `scatter` then `gather_pieces` (via `gather_dist`) reproduces the
    /// global matrix exactly for both distribution styles, any valid
    /// grid, and shapes the grid over-partitions (`n < pr·l`).
    #[test]
    fn scatter_gather_roundtrips(
        pi in 0usize..6,
        li in 0usize..4,
        nrows in 1usize..60,
        ncols in 1usize..60,
        deg in 1usize..4,
        seed in 0u64..1_000,
        b_style in 0usize..2,
    ) {
        let (p, l) = grid_pair(pi, li);
        let kind = if b_style == 1 { DistKind::BStyle } else { DistKind::AStyle };
        let global = er_random::<PlusTimesF64>(nrows, ncols, deg, seed);
        let g2 = global.clone();
        let results = run_ranks(p, Machine::knl_mini(), move |rank| {
            let grid = Grid3D::new(rank, l);
            let payload = (rank.rank() == 0).then(|| Arc::new(g2.clone()));
            let dm = scatter(rank, &grid, kind, payload);
            gather_dist(rank, &grid, &dm)
        });
        let back = results[0].clone().expect("root gathers");
        prop_assert!(
            global.eq_modulo_order(&back),
            "roundtrip failed: p={p} l={l} {kind:?} {nrows}x{ncols}"
        );
    }

    /// `transpose_to_bstyle` hands every rank the `(i, k)` row slice that
    /// is conformant with A's `(s, k)` column slices — the requirement
    /// for stage `s` of SUMMA inside layer `k` — and the gathered result
    /// equals the serial transpose, for non-square shapes and every
    /// valid `(p, l)`.
    #[test]
    fn transpose_to_bstyle_slices_conform(
        pi in 0usize..6,
        li in 0usize..4,
        nrows in 1usize..60,
        ncols in 1usize..60,
        deg in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let (p, l) = grid_pair(pi, li);
        let global = er_random::<PlusTimesF64>(nrows, ncols, deg, seed);
        let g2 = global.clone();
        let results = run_ranks(p, Machine::knl_mini(), move |rank| {
            let grid = Grid3D::new(rank, l);
            let payload = (rank.rank() == 0).then(|| Arc::new(g2.clone()));
            let a = scatter(rank, &grid, DistKind::AStyle, payload);
            let at = transpose_to_bstyle(rank, &grid, &a);
            assert_eq!(at.kind, DistKind::BStyle);
            assert_eq!((at.grows, at.gcols), (a.gcols, a.grows));
            // B-style row slice (i, k) of Aᵀ is the hierarchical
            // sub-block of the inner dimension — identical to the
            // column slice A's owner (j=i) holds, so stage pieces
            // multiply conformantly.
            let rr = at.row_range(&grid);
            assert_eq!(
                rr,
                sub_block(at.grows, grid.pr, grid.i, grid.l, grid.k),
                "row slice mismatch at rank ({},{},{})",
                grid.i, grid.j, grid.k
            );
            // Local piece dimensions agree with the claimed global slices.
            assert_eq!(at.local.nrows(), rr.len());
            assert_eq!(at.local.ncols(), at.col_range(&grid).len());
            gather_dist(rank, &grid, &at)
        });
        let back = results[0].clone().expect("root gathers");
        let expect = spgemm_sparse::ops::transpose(&global);
        prop_assert!(
            back.eq_modulo_order(&expect),
            "transpose mismatch: p={p} l={l} {nrows}x{ncols}"
        );
    }
}
