//! Plan-cache correctness through the full server: a cached plan's
//! replay is bit-identical to the fresh run, eviction happens at
//! capacity, and a structurally different operand never falsely hits.

use spgemm_core::serve::PlanSource;
use spgemm_core::{JobServer, JobSpec, MemoryBudget, ServerConfig, ServerStats};
use spgemm_simgrid::Machine;
use spgemm_sparse::gen::{clustered_similarity, er_random};
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::CscMatrix;

fn server_with(cache_capacity: usize) -> JobServer {
    let mut cfg = ServerConfig::new(usize::MAX / 4);
    cfg.machine = Machine::knl_mini();
    cfg.cache_capacity = cache_capacity;
    JobServer::start(cfg)
}

fn mat(seed: u64) -> CscMatrix<f64> {
    er_random::<PlusTimesF64>(48, 48, 4, seed)
}

/// Replaying a cached plan produces the exact product the fresh plan
/// produced — same values, same structure — and the cached run really
/// replays the same configuration (batches, layers).
#[test]
fn cached_plan_replay_is_bit_identical() {
    let server = server_with(16);
    let a = server.register(mat(71));
    let b = server.register(mat(72));
    let spec = JobSpec::new(a, b, 4, MemoryBudget::unlimited());

    let fresh = server.submit(spec.clone()).wait();
    assert_eq!(fresh.plan_source, Some(PlanSource::Fresh));
    let fresh = fresh.completed().expect("ample budget completes");

    let cached = server.submit(spec).wait();
    assert_eq!(cached.plan_source, Some(PlanSource::Cached));
    let cached = cached.completed().expect("completes");

    assert_eq!(cached.nbatches, fresh.nbatches);
    assert_eq!(cached.layers, fresh.layers);
    let (cf, cc) = (fresh.c.as_ref().unwrap(), cached.c.as_ref().unwrap());
    assert!(cf.eq_modulo_order(cc), "cached replay diverged from fresh run");
    // Bit-level, not approximate: identical nnz and exact values.
    assert_eq!(cf.nnz(), cc.nnz());
    server.shutdown();
}

/// A capacity-1 cache evicts: A, then B (evicts A's plan), then A again
/// must re-predict (probe memo still hits — eviction only drops plans).
#[test]
fn eviction_forces_a_repredict_but_not_a_reprobe() {
    let server = server_with(1);
    let a = server.register(mat(81));
    let b = server.register(mat(82));
    let spec_a = JobSpec::new(a, a, 4, MemoryBudget::unlimited());
    let spec_b = JobSpec::new(b, b, 4, MemoryBudget::unlimited());

    assert_eq!(
        server.submit(spec_a.clone()).wait().plan_source,
        Some(PlanSource::Fresh)
    );
    assert_eq!(server.submit(spec_b).wait().plan_source, Some(PlanSource::Fresh));
    // A's plan was evicted by B's insert; its probe memo survives.
    let again = server.submit(spec_a).wait();
    assert_eq!(again.plan_source, Some(PlanSource::ProbeReused));

    let stats: ServerStats = server.shutdown();
    assert!(stats.cache.plan_evictions >= 1, "capacity-1 cache never evicted");
    assert_eq!(stats.cache.plan_hits, 0);
    assert_eq!(stats.cache.plan_misses, 3);
}

/// The cache key is the structural sketch: a *different* structure under
/// the same (p, budget) must miss, while a re-registered *identical*
/// structure under new handles still hits the plan level.
#[test]
fn sketch_mismatch_invalidates_and_sketch_match_dedups() {
    let server = server_with(16);

    // Same dims and similar nnz, different sparsity structure.
    let a = server.register(mat(91));
    let clustered = server.register(clustered_similarity(4, 12, 8, 1, 91));
    let rep_a = server.submit(JobSpec::new(a, a, 4, MemoryBudget::unlimited())).wait();
    assert_eq!(rep_a.plan_source, Some(PlanSource::Fresh));
    let rep_c = server
        .submit(JobSpec::new(clustered, clustered, 4, MemoryBudget::unlimited()))
        .wait();
    assert_eq!(
        rep_c.plan_source,
        Some(PlanSource::Fresh),
        "structurally different operands must not hit the plan cache"
    );

    // Same content registered under fresh handles: the probe memo (keyed
    // by handles) misses, but the sketch matches, so the plan level hits.
    let a2 = server.register(mat(91));
    let rep_a2 = server.submit(JobSpec::new(a2, a2, 4, MemoryBudget::unlimited())).wait();
    assert_eq!(
        rep_a2.plan_source,
        Some(PlanSource::Cached),
        "identical structure under new handles should dedup at the plan level"
    );
    let done_a = rep_a.completed().unwrap();
    let done_a2 = rep_a2.completed().unwrap();
    assert!(done_a.c.as_ref().unwrap().eq_modulo_order(done_a2.c.as_ref().unwrap()));

    // Same structure but a different per-job budget re-predicts: the key
    // includes the budget because it changes the planned batch count.
    let rep_tight = server
        .submit(JobSpec::new(a, a, 4, MemoryBudget::new(1 << 20)))
        .wait();
    assert_eq!(rep_tight.plan_source, Some(PlanSource::ProbeReused));

    let stats = server.shutdown();
    assert_eq!(stats.cache.plan_hits, 1);
    assert_eq!(stats.completed, 4);
}
