//! Overlapped (pipelined nonblocking) mode vs blocking mode.
//!
//! The overlapped pipeline must be a pure *scheduling* change: the product
//! is bit-identical to blocking mode (same merge order, same all-to-all
//! delivery order), only the modeled clocks differ — communication posted
//! a stage early hides behind Local-Multiply and the batch-boundary merge
//! phases, so the critical path shrinks while the hidden time shows up in
//! `StepBreakdown::overlap_total`.

use spgemm_core::{run_spgemm, BackendKind, OverlapMode, RunConfig};
use spgemm_simgrid::Machine;
use spgemm_sparse::gen::er_random;
use spgemm_sparse::semiring::{PlusTimesF64, PlusTimesU64, Semiring};
use spgemm_sparse::spgemm::spgemm_spa;
use spgemm_sparse::CscMatrix;

fn run<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
    p: usize,
    l: usize,
    nb: usize,
    overlap: OverlapMode,
) -> spgemm_core::RunOutput<S::T> {
    let mut cfg = RunConfig::new(p, l);
    cfg.forced_batches = Some(nb);
    cfg.overlap = overlap;
    run_spgemm::<S>(&cfg, a, b).unwrap()
}

/// The headline property: overlapped mode changes *when* communication is
/// charged, never *what* is computed. Bit-identical output (`==` on the
/// gathered CSC, not just `eq_modulo_order`) across semirings, grids and
/// batch counts.
#[test]
fn overlapped_output_is_bit_identical_to_blocking() {
    let af = er_random::<PlusTimesF64>(48, 48, 5, 210);
    let bf = er_random::<PlusTimesF64>(48, 48, 5, 211);
    let au = er_random::<PlusTimesU64>(48, 48, 5, 212).map(|_| 1u64);
    let bu = er_random::<PlusTimesU64>(48, 48, 5, 213).map(|_| 1u64);
    for (p, l) in [(4usize, 1usize), (8, 2), (16, 4)] {
        for nb in [1usize, 2, 4] {
            let blk = run::<PlusTimesF64>(&af, &bf, p, l, nb, OverlapMode::Blocking);
            let ovl = run::<PlusTimesF64>(&af, &bf, p, l, nb, OverlapMode::Overlapped);
            assert_eq!(
                blk.c.as_ref().unwrap(),
                ovl.c.as_ref().unwrap(),
                "f64 product differs: p={p} l={l} b={nb}"
            );
            let blk = run::<PlusTimesU64>(&au, &bu, p, l, nb, OverlapMode::Blocking);
            let ovl = run::<PlusTimesU64>(&au, &bu, p, l, nb, OverlapMode::Overlapped);
            assert_eq!(
                blk.c.as_ref().unwrap(),
                ovl.c.as_ref().unwrap(),
                "u64 product differs: p={p} l={l} b={nb}"
            );
        }
    }
}

/// Fig. 6-style strong-scaling point with pr > 1 so the per-stage
/// broadcasts exist: pipelining must strictly reduce the modeled
/// critical path and report the hidden communication it bought.
#[test]
fn overlap_reduces_modeled_total_on_fig6_workload() {
    let a = er_random::<PlusTimesF64>(96, 96, 8, 220);
    let b = er_random::<PlusTimesF64>(96, 96, 8, 221);
    let mut cfg = RunConfig::new(16, 4);
    cfg.machine = Machine::knl_mini();
    cfg.forced_batches = Some(4);
    let blk = run_spgemm::<PlusTimesF64>(&cfg, &a, &b).unwrap();
    cfg.overlap = OverlapMode::Overlapped;
    let ovl = run_spgemm::<PlusTimesF64>(&cfg, &a, &b).unwrap();

    assert_eq!(blk.c, ovl.c);
    assert!(
        ovl.max.overlap_total() > 0.0,
        "pipelined run should hide some communication"
    );
    assert!(
        ovl.max.total() < blk.max.total(),
        "overlap should shrink the critical path: {} vs {}",
        ovl.max.total(),
        blk.max.total()
    );
    // Blocking mode is the paper-faithful baseline: it must never report
    // hidden time.
    assert_eq!(blk.max.overlap_total(), 0.0);
}

/// Forcing more batches than any rank has local B columns leaves some
/// batches completely empty on some (or all) ranks. Both modes must
/// survive that — empty broadcasts, empty multiplies, empty all-to-alls —
/// and still assemble the correct product.
#[test]
fn forced_batches_beyond_local_column_count() {
    // p=16, l=4 ⇒ 2x2x4 grid; B-style local slabs get 16/8 = 2 columns
    // per (col, layer) slot. 12 batches ≫ 2 local columns.
    let a = er_random::<PlusTimesU64>(16, 16, 3, 230).map(|_| 1u64);
    let b = er_random::<PlusTimesU64>(16, 16, 3, 231).map(|_| 1u64);
    let (reference, _) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
    for overlap in [OverlapMode::Blocking, OverlapMode::Overlapped] {
        let out = run::<PlusTimesU64>(&a, &b, 16, 4, 12, overlap);
        assert_eq!(out.nbatches, 12);
        assert!(
            out.c.as_ref().unwrap().eq_modulo_order(&reference),
            "{overlap:?} with starved batches produced a wrong product"
        );
    }
}

/// The modeled clocks of an overlapped run are a pure function of the
/// inputs: repeated `run_ranks` executions (real threads, real channels)
/// must produce identical per-rank breakdowns, not just identical output.
///
/// This property is specific to the Simgrid backend (measured Native
/// clocks are wall-time and legitimately vary), so the backend is pinned
/// rather than inherited from `SPGEMM_BACKEND`.
#[test]
fn overlapped_clocks_are_deterministic_across_executions() {
    let a = er_random::<PlusTimesF64>(64, 64, 6, 240);
    let b = er_random::<PlusTimesF64>(64, 64, 6, 241);
    let run_pinned = || {
        let mut cfg = RunConfig::new(16, 4);
        cfg.forced_batches = Some(3);
        cfg.overlap = OverlapMode::Overlapped;
        cfg.backend = BackendKind::Simgrid;
        run_spgemm::<PlusTimesF64>(&cfg, &a, &b).unwrap()
    };
    let first = run_pinned();
    for attempt in 0..3 {
        let again = run_pinned();
        assert_eq!(first.c, again.c, "output drifted on attempt {attempt}");
        assert_eq!(
            first.per_rank, again.per_rank,
            "modeled clocks drifted on attempt {attempt}"
        );
    }
}
