//! SparseFetch vs DenseBcast: the exchange mode is a pure *transport*
//! change.
//!
//! The sparsity-aware fetch pads the received A operand so every column
//! the kernel reads (A columns at the received B's occupied rows) agrees
//! with what the broadcast would have delivered — so the product is
//! bit-identical (`==` on the gathered CSC, not just `eq_modulo_order`)
//! across semirings, grids, batch counts, and overlap modes; only the
//! modeled clocks and recorded step bytes differ. The protocol checker
//! must stay silent in both modes.

use spgemm_core::{run_spgemm, ExchangeMode, OverlapMode, RunConfig};
use spgemm_simgrid::{CheckMode, Step};
use spgemm_sparse::gen::{er_random, rmat};
use spgemm_sparse::semiring::{PlusTimesF64, PlusTimesU64, Semiring};
use spgemm_sparse::spgemm::spgemm_spa;
use spgemm_sparse::CscMatrix;

fn run<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
    p: usize,
    l: usize,
    nb: usize,
    overlap: OverlapMode,
    exchange: ExchangeMode,
) -> spgemm_core::RunOutput<S::T> {
    let mut cfg = RunConfig::new(p, l);
    cfg.forced_batches = Some(nb);
    cfg.overlap = overlap;
    cfg.exchange = exchange;
    cfg.check = CheckMode::Check; // zero tolerated violations, both modes
    run_spgemm::<S>(&cfg, a, b).unwrap()
}

/// Headline property: SparseFetch output is bit-identical to DenseBcast
/// across semirings, grids, batch counts, and both overlap modes.
#[test]
fn sparse_fetch_is_bit_identical_to_dense_bcast() {
    let af = er_random::<PlusTimesF64>(48, 48, 5, 310);
    let bf = er_random::<PlusTimesF64>(48, 48, 5, 311);
    let au = er_random::<PlusTimesU64>(48, 48, 5, 312).map(|_| 1u64);
    let bu = er_random::<PlusTimesU64>(48, 48, 5, 313).map(|_| 1u64);
    for (p, l) in [(4usize, 1usize), (8, 2), (16, 4), (16, 16)] {
        for nb in [1usize, 2, 4] {
            for ov in [OverlapMode::Blocking, OverlapMode::Overlapped] {
                let dense =
                    run::<PlusTimesF64>(&af, &bf, p, l, nb, ov, ExchangeMode::DenseBcast);
                let sparse =
                    run::<PlusTimesF64>(&af, &bf, p, l, nb, ov, ExchangeMode::SparseFetch);
                assert_eq!(
                    dense.c.as_ref().unwrap(),
                    sparse.c.as_ref().unwrap(),
                    "f64 product differs: p={p} l={l} b={nb} {ov:?}"
                );
                let dense =
                    run::<PlusTimesU64>(&au, &bu, p, l, nb, ov, ExchangeMode::DenseBcast);
                let sparse =
                    run::<PlusTimesU64>(&au, &bu, p, l, nb, ov, ExchangeMode::SparseFetch);
                assert_eq!(
                    dense.c.as_ref().unwrap(),
                    sparse.c.as_ref().unwrap(),
                    "u64 product differs: p={p} l={l} b={nb} {ov:?}"
                );
            }
        }
    }
}

/// Skewed non-square A·Aᵀ (the fetch mode's target workload) against the
/// serial reference, with the symbolic pass (no forced batches) also
/// running through the sparse exchange.
#[test]
fn sparse_fetch_aat_matches_serial_reference() {
    let a = rmat::<PlusTimesF64>(6, 4, None, false, 314); // 64², skewed
    let at = spgemm_sparse::ops::transpose(&a);
    let (reference, _) = spgemm_spa::<PlusTimesF64>(&a, &at).unwrap();
    for l in [1usize, 4] {
        let mut cfg = RunConfig::new(16, l);
        cfg.exchange = ExchangeMode::SparseFetch;
        cfg.check = CheckMode::Check;
        let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &at).unwrap();
        assert!(
            out.c.as_ref().unwrap().approx_eq(&reference, 1e-10),
            "A·Aᵀ mismatch at l={l}"
        );
    }
}

/// The traffic actually moves to the fetch steps: sparse mode records
/// FetchRequest/FetchReply bytes and no ABcast bytes, dense the reverse.
#[test]
fn fetch_steps_carry_the_a_traffic() {
    let a = er_random::<PlusTimesF64>(64, 64, 4, 315);
    let b = er_random::<PlusTimesF64>(64, 64, 4, 316);
    let dense = run::<PlusTimesF64>(&a, &b, 16, 4, 2, OverlapMode::Blocking, ExchangeMode::DenseBcast);
    let sparse = run::<PlusTimesF64>(&a, &b, 16, 4, 2, OverlapMode::Blocking, ExchangeMode::SparseFetch);
    assert!(dense.max.bytes_of(Step::ABcast) > 0);
    assert_eq!(dense.max.bytes_of(Step::FetchRequest), 0);
    assert_eq!(dense.max.bytes_of(Step::FetchReply), 0);
    assert_eq!(sparse.max.bytes_of(Step::ABcast), 0);
    assert!(sparse.max.bytes_of(Step::FetchRequest) > 0);
    assert!(sparse.max.bytes_of(Step::FetchReply) > 0);
    // B moves identically in both modes.
    assert_eq!(dense.max.bytes_of(Step::BBcast), sparse.max.bytes_of(Step::BBcast));
}
