//! SparseFetch vs DenseBcast: the exchange mode is a pure *transport*
//! change.
//!
//! The sparsity-aware fetch pads the received A operand so every column
//! the kernel reads (A columns at the received B's occupied rows) agrees
//! with what the broadcast would have delivered — so the product is
//! bit-identical (`==` on the gathered CSC, not just `eq_modulo_order`)
//! across semirings, grids, batch counts, and overlap modes; only the
//! modeled clocks and recorded step bytes differ. The protocol checker
//! must stay silent in both modes.

use spgemm_core::{run_spgemm, ExchangeMode, OverlapMode, RunConfig};
use spgemm_simgrid::{CheckMode, Step};
use spgemm_sparse::gen::{er_random, rmat};
use spgemm_sparse::semiring::{PlusTimesF64, PlusTimesU64, Semiring};
use spgemm_sparse::spgemm::spgemm_spa;
use spgemm_sparse::CscMatrix;

fn run<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
    p: usize,
    l: usize,
    nb: usize,
    overlap: OverlapMode,
    exchange: ExchangeMode,
) -> spgemm_core::RunOutput<S::T> {
    let mut cfg = RunConfig::new(p, l);
    cfg.forced_batches = Some(nb);
    cfg.overlap = overlap;
    cfg.exchange = exchange;
    cfg.check = CheckMode::Check; // zero tolerated violations, both modes
    run_spgemm::<S>(&cfg, a, b).unwrap()
}

/// Headline property: SparseFetch output is bit-identical to DenseBcast
/// across semirings, grids, batch counts, and both overlap modes.
#[test]
fn sparse_fetch_is_bit_identical_to_dense_bcast() {
    let af = er_random::<PlusTimesF64>(48, 48, 5, 310);
    let bf = er_random::<PlusTimesF64>(48, 48, 5, 311);
    let au = er_random::<PlusTimesU64>(48, 48, 5, 312).map(|_| 1u64);
    let bu = er_random::<PlusTimesU64>(48, 48, 5, 313).map(|_| 1u64);
    for (p, l) in [(4usize, 1usize), (8, 2), (16, 4), (16, 16)] {
        for nb in [1usize, 2, 4] {
            for ov in [OverlapMode::Blocking, OverlapMode::Overlapped] {
                let dense =
                    run::<PlusTimesF64>(&af, &bf, p, l, nb, ov, ExchangeMode::DenseBcast);
                let sparse =
                    run::<PlusTimesF64>(&af, &bf, p, l, nb, ov, ExchangeMode::SparseFetch);
                assert_eq!(
                    dense.c.as_ref().unwrap(),
                    sparse.c.as_ref().unwrap(),
                    "f64 product differs: p={p} l={l} b={nb} {ov:?}"
                );
                let dense =
                    run::<PlusTimesU64>(&au, &bu, p, l, nb, ov, ExchangeMode::DenseBcast);
                let sparse =
                    run::<PlusTimesU64>(&au, &bu, p, l, nb, ov, ExchangeMode::SparseFetch);
                assert_eq!(
                    dense.c.as_ref().unwrap(),
                    sparse.c.as_ref().unwrap(),
                    "u64 product differs: p={p} l={l} b={nb} {ov:?}"
                );
            }
        }
    }
}

/// Skewed non-square A·Aᵀ (the fetch mode's target workload) against the
/// serial reference, with the symbolic pass (no forced batches) also
/// running through the sparse exchange.
#[test]
fn sparse_fetch_aat_matches_serial_reference() {
    let a = rmat::<PlusTimesF64>(6, 4, None, false, 314); // 64², skewed
    let at = spgemm_sparse::ops::transpose(&a);
    let (reference, _) = spgemm_spa::<PlusTimesF64>(&a, &at).unwrap();
    for l in [1usize, 4] {
        let mut cfg = RunConfig::new(16, l);
        cfg.exchange = ExchangeMode::SparseFetch;
        cfg.check = CheckMode::Check;
        let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &at).unwrap();
        assert!(
            out.c.as_ref().unwrap().approx_eq(&reference, 1e-10),
            "A·Aᵀ mismatch at l={l}"
        );
    }
}

/// A buggy peer that reposts a fetch request on an already-in-flight
/// envelope — e.g. a requester whose fetch-round counter failed to
/// advance, resending `Unchanged` on the same `(comm, tag, src, dst)` —
/// is reported as a tag collision, with the real cache-state payload on
/// the wire.
#[test]
#[should_panic(expected = "TagCollision")]
fn duplicate_fetch_request_tag_is_a_tag_collision() {
    use spgemm_core::exchange::{fetch_req_tag, FetchReq};
    spgemm_simgrid::run_ranks_checked(2, spgemm_simgrid::Machine::knl(), CheckMode::Check, |rank| {
        let comm = rank.world_comm();
        if rank.rank() == 0 {
            rank.send(&comm, 1, fetch_req_tag(0), FetchReq::Rows(vec![1, 2, 3]));
            // Same round tag again — a desynced counter. The checker
            // rejects the second post at send time.
            rank.send(&comm, 1, fetch_req_tag(0), FetchReq::Unchanged);
        } else {
            // Park on a round that never arrives: keeps this mailbox open
            // (no racy early exit under schedule perturbation) while
            // leaving round 0's envelope undelivered, so the second send
            // is deterministically a collision.
            let _: FetchReq = rank.recv(&comm, 0, fetch_req_tag(9));
        }
    });
}

/// A requester blocking on the wrong fetch-reply tag (its round counter
/// ran ahead of the owner's) can never be matched: every live rank is
/// receive-blocked and the checker reports an unmatched receive instead
/// of hanging the suite.
#[test]
#[should_panic(expected = "UnmatchedRecv")]
fn mismatched_fetch_reply_tag_is_an_unmatched_recv() {
    use spgemm_core::exchange::{fetch_rep_tag, FetchRep};
    spgemm_simgrid::run_ranks_checked(2, spgemm_simgrid::Machine::knl(), CheckMode::Check, |rank| {
        let comm = rank.world_comm();
        if rank.rank() == 1 {
            // The owner replies for round 0 (a cache-hit control message)…
            rank.send(&comm, 0, fetch_rep_tag(0), FetchRep::<f64>::CacheValid);
        } else {
            // …but the requester waits on round 1's reply tag.
            let _: FetchRep<f64> = rank.recv(&comm, 1, fetch_rep_tag(1));
        }
    });
}

/// Seeded schedule perturbation on the full cached SparseFetch session:
/// across wakeup-order permutations the iterates stay bit-identical, the
/// cache state machine takes the same transitions, and the protocol
/// checker stays silent.
#[test]
fn perturbed_cached_session_is_bit_identical_and_clean() {
    use spgemm_core::batched::BatchConfig;
    use spgemm_core::{CoreError, IterSession};
    use spgemm_simgrid::{run_ranks_seeded, Grid3D, Machine};
    use std::sync::Arc;

    let m0 = er_random::<PlusTimesF64>(32, 32, 3, 320);
    let run = |seed: Option<u64>| {
        let g = Arc::new(m0.clone());
        let results = run_ranks_seeded(16, Machine::knl_mini(), CheckMode::Check, seed, move |rank| {
            let grid = Grid3D::new(rank, 4);
            let cfg = BatchConfig {
                exchange: ExchangeMode::SparseFetch,
                ..BatchConfig::default()
            };
            let mut sess = IterSession::<PlusTimesF64>::new(
                rank,
                &grid,
                (rank.rank() == 0).then(|| Arc::clone(&g)),
                cfg,
                true,
            )?;
            let mut cache_trail = Vec::new();
            for _ in 0..3 {
                let st = sess.step(rank, &grid, |_, out| Some(out.piece))?;
                cache_trail.push((st.cache.hits, st.cache.misses, st.cache.served_cached));
            }
            Ok::<_, CoreError>((sess.gather(rank, &grid), cache_trail))
        });
        results
            .into_iter()
            .map(|r| r.expect("perturbed session must stay clean"))
            .collect::<Vec<_>>()
    };
    let base = run(None);
    for seed in [1u64, 2, 3] {
        let perturbed = run(Some(seed));
        for (rk, (b, p)) in base.iter().zip(perturbed.iter()).enumerate() {
            assert_eq!(b.1, p.1, "seed {seed} rank {rk}: cache transitions diverged");
            assert_eq!(b.0, p.0, "seed {seed} rank {rk}: iterate diverged");
        }
    }
}

/// `RunConfig::perturb` reaches the harness: a perturbed one-shot multiply
/// is bit-identical to the unperturbed baseline in both exchange modes.
#[test]
fn perturbed_multiply_matches_baseline() {
    let a = er_random::<PlusTimesF64>(48, 48, 4, 321);
    let b = er_random::<PlusTimesF64>(48, 48, 4, 322);
    for exchange in [ExchangeMode::DenseBcast, ExchangeMode::SparseFetch] {
        let mut cfg = RunConfig::new(16, 4);
        cfg.exchange = exchange;
        cfg.check = CheckMode::Check;
        let base = run_spgemm::<PlusTimesF64>(&cfg, &a, &b).unwrap();
        for seed in [1u64, 2] {
            cfg.perturb = Some(seed);
            let perturbed = run_spgemm::<PlusTimesF64>(&cfg, &a, &b).unwrap();
            assert_eq!(
                base.c.as_ref().unwrap(),
                perturbed.c.as_ref().unwrap(),
                "seed {seed} {exchange:?}: perturbed product diverged"
            );
        }
    }
}

/// The traffic actually moves to the fetch steps: sparse mode records
/// FetchRequest/FetchReply bytes and no ABcast bytes, dense the reverse.
#[test]
fn fetch_steps_carry_the_a_traffic() {
    let a = er_random::<PlusTimesF64>(64, 64, 4, 315);
    let b = er_random::<PlusTimesF64>(64, 64, 4, 316);
    let dense = run::<PlusTimesF64>(&a, &b, 16, 4, 2, OverlapMode::Blocking, ExchangeMode::DenseBcast);
    let sparse = run::<PlusTimesF64>(&a, &b, 16, 4, 2, OverlapMode::Blocking, ExchangeMode::SparseFetch);
    assert!(dense.max.bytes_of(Step::ABcast) > 0);
    assert_eq!(dense.max.bytes_of(Step::FetchRequest), 0);
    assert_eq!(dense.max.bytes_of(Step::FetchReply), 0);
    assert_eq!(sparse.max.bytes_of(Step::ABcast), 0);
    assert!(sparse.max.bytes_of(Step::FetchRequest) > 0);
    assert!(sparse.max.bytes_of(Step::FetchReply) > 0);
    // B moves identically in both modes.
    assert_eq!(dense.max.bytes_of(Step::BBcast), sparse.max.bytes_of(Step::BBcast));
}
