//! Algebraic laws of the distributed multiply: the semiring structure must
//! survive distribution, batching and kernel choice.

use spgemm_core::{run_spgemm, KernelStrategy, RunConfig};
use spgemm_sparse::gen::er_random;
use spgemm_sparse::ops::elementwise_add;
use spgemm_sparse::semiring::{BoolOrAnd, PlusTimesU64};
use spgemm_sparse::spgemm::spgemm_spa;
use spgemm_sparse::CscMatrix;

fn dmul(p: usize, l: usize, nb: usize, a: &CscMatrix<u64>, b: &CscMatrix<u64>) -> CscMatrix<u64> {
    let mut cfg = RunConfig::new(p, l);
    cfg.forced_batches = Some(nb);
    run_spgemm::<PlusTimesU64>(&cfg, a, b)
        .expect("distributed multiply")
        .c
        .expect("gathered")
}

/// `(A·B)·C == A·(B·C)` where every multiply runs distributed, each on a
/// different grid/batch configuration.
#[test]
fn associativity_across_configurations() {
    let a = er_random::<PlusTimesU64>(36, 30, 3, 301).map(|_| 2u64);
    let b = er_random::<PlusTimesU64>(30, 34, 3, 302).map(|_| 3u64);
    let c = er_random::<PlusTimesU64>(34, 28, 3, 303).map(|_| 1u64);
    let ab = dmul(4, 4, 2, &a, &b);
    let left = dmul(9, 1, 3, &ab, &c);
    let bc = dmul(16, 4, 1, &b, &c);
    let right = dmul(8, 2, 4, &a, &bc);
    assert!(left.eq_modulo_order(&right));
}

/// Left distributivity: `A·(B ⊕ C) == A·B ⊕ A·C` with the ⊕ computed by
/// the local merge kernel and the products computed distributed.
#[test]
fn distributivity_over_elementwise_add() {
    let a = er_random::<PlusTimesU64>(32, 32, 4, 311).map(|_| 1u64);
    let b = er_random::<PlusTimesU64>(32, 32, 3, 312).map(|_| 2u64);
    let c = er_random::<PlusTimesU64>(32, 32, 3, 313).map(|_| 5u64);
    let b_plus_c = elementwise_add::<PlusTimesU64>(&b, &c).unwrap();
    let lhs = dmul(16, 4, 2, &a, &b_plus_c);
    let ab = dmul(4, 1, 1, &a, &b);
    let ac = dmul(4, 4, 3, &a, &c);
    let rhs = elementwise_add::<PlusTimesU64>(&ab, &ac).unwrap();
    assert!(lhs.eq_modulo_order(&rhs));
}

/// Boolean matrix powers computed distributed equal serial reachability:
/// `A^4` over (∨, ∧) marks exactly the 4-step-reachable pairs.
#[test]
fn boolean_power_equals_serial_reachability() {
    let a = er_random::<BoolOrAnd>(40, 40, 2, 321);
    // Serial A^4.
    let (a2s, _) = spgemm_spa::<BoolOrAnd>(&a, &a).unwrap();
    let (a4s, _) = spgemm_spa::<BoolOrAnd>(&a2s, &a2s).unwrap();
    // Distributed A^4 via two squarings on different grids.
    let sq = |m: &CscMatrix<bool>, p: usize, l: usize| {
        let mut cfg = RunConfig::new(p, l);
        cfg.forced_batches = Some(2);
        run_spgemm::<BoolOrAnd>(&cfg, m, m).unwrap().c.unwrap()
    };
    let a2 = sq(&a, 16, 4);
    let a4 = sq(&a2, 9, 1);
    assert!(a4.eq_modulo_order(&a4s));
}

/// Kernel generations commute with everything: `Previous` on one factor
/// order equals `New` on the other (u64: exact arithmetic).
#[test]
fn kernel_generations_are_interchangeable() {
    let a = er_random::<PlusTimesU64>(44, 44, 4, 331).map(|_| 1u64);
    let b = er_random::<PlusTimesU64>(44, 44, 4, 332).map(|_| 1u64);
    let mut prev = RunConfig::new(16, 16);
    prev.kernels = KernelStrategy::Previous;
    prev.forced_batches = Some(3);
    let mut new = RunConfig::new(12, 3);
    new.kernels = KernelStrategy::New;
    new.forced_batches = Some(5);
    let x = run_spgemm::<PlusTimesU64>(&prev, &a, &b).unwrap().c.unwrap();
    let y = run_spgemm::<PlusTimesU64>(&new, &a, &b).unwrap().c.unwrap();
    assert!(x.eq_modulo_order(&y));
}

/// Batched A·Aᵀ through the distributed transpose equals the plain
/// two-operand path.
#[test]
fn aat_helper_equals_two_operand_path() {
    let a = er_random::<PlusTimesU64>(30, 50, 3, 341).map(|_| 1u64);
    let at = spgemm_sparse::ops::transpose(&a);
    let mut cfg = RunConfig::new(16, 4);
    cfg.forced_batches = Some(2);
    let via_pair = run_spgemm::<PlusTimesU64>(&cfg, &a, &at).unwrap().c.unwrap();
    let via_helper = spgemm_core::run_spgemm_aat::<PlusTimesU64>(&cfg, &a)
        .unwrap()
        .c
        .unwrap();
    assert!(via_pair.eq_modulo_order(&via_helper));
}
