//! End-to-end application tests over the distributed SpGEMM stack.

use spgemm_apps::components::{num_clusters, same_partition};
use spgemm_apps::jaccard::{jaccard_similarities, JaccardConfig};
use spgemm_apps::mcl::{markov_cluster, MclParams};
use spgemm_apps::overlap::{find_overlaps, OverlapConfig};
use spgemm_apps::triangles::{count_triangles, count_triangles_serial, TriangleConfig};
use spgemm_core::{KernelStrategy, MemoryBudget};
use spgemm_sparse::gen::{clustered_similarity, kmer_matrix, rmat};
use spgemm_sparse::semiring::PlusTimesU64;

#[test]
fn mcl_recovers_clusters_under_memory_pressure_and_both_kernels() {
    let (nclusters, size) = (5usize, 10usize);
    let adj = clustered_similarity(nclusters, size, 6, 1, 101);
    let expected: Vec<usize> = (0..nclusters * size).map(|v| v / size).collect();
    for kernels in [KernelStrategy::New, KernelStrategy::Previous] {
        let mut params = MclParams::new(4, 4);
        params.kernels = kernels;
        params.select = 12;
        params.budget = MemoryBudget::new(adj.nrows() * params.select * 24 * 8);
        let result = markov_cluster(&adj, &params).unwrap();
        assert!(
            same_partition(&result.labels, &expected),
            "kernels={}: got {} clusters",
            kernels.name(),
            num_clusters(&result.labels)
        );
    }
}

#[test]
fn mcl_batched_and_unbatched_agree() {
    let adj = clustered_similarity(4, 10, 6, 1, 102);
    let unbatched = markov_cluster(&adj, &MclParams::new(4, 1)).unwrap();
    let mut tight = MclParams::new(4, 1);
    tight.select = 12;
    tight.budget = MemoryBudget::new(adj.nrows() * tight.select * 24 * 8);
    let batched = markov_cluster(&adj, &tight).unwrap();
    assert!(batched.per_iter[0].nbatches >= 1);
    assert!(same_partition(&unbatched.labels, &batched.labels));
}

#[test]
fn triangles_across_grids_match_brute_force() {
    let adj = rmat::<PlusTimesU64>(6, 6, None, true, 103).map(|_| 1u64);
    let expected = count_triangles_serial(&adj);
    assert!(expected > 0);
    for (p, l) in [(1usize, 1usize), (4, 4), (9, 1), (16, 16)] {
        let (count, _) = count_triangles(&adj, &TriangleConfig::new(p, l)).unwrap();
        assert_eq!(count, expected, "p={p} l={l}");
    }
}

#[test]
fn overlap_detection_with_batching() {
    let m = kmer_matrix(60, 500, 3, 104);
    let reference = {
        let (pairs, _) = find_overlaps(&m, &OverlapConfig::new(2, 1, 1)).unwrap();
        pairs
    };
    assert!(!reference.is_empty());
    let mut cfg = OverlapConfig::new(2, 16, 4);
    cfg.run.forced_batches = Some(4);
    let (pairs, breakdown) = find_overlaps(&m, &cfg).unwrap();
    assert_eq!(pairs, reference);
    assert!(breakdown.total() > 0.0);
}

#[test]
fn jaccard_values_bounded_and_symmetric() {
    let m = kmer_matrix(40, 300, 3, 105);
    let j = jaccard_similarities(&m, &JaccardConfig::new(0.0, 4, 4)).unwrap();
    assert!(j.nnz() > 0);
    for (_, _, v) in j.iter() {
        assert!(v > 0.0 && v <= 1.0, "similarity {v} out of range");
    }
    let jt = spgemm_sparse::ops::transpose(&j);
    assert!(j.approx_eq(&jt, 1e-12));
}

#[test]
fn mcl_iteration_stats_are_coherent() {
    let adj = clustered_similarity(3, 10, 5, 1, 106);
    let result = markov_cluster(&adj, &MclParams::new(4, 1)).unwrap();
    assert_eq!(result.per_iter.len(), result.iterations);
    // Chaos at the final iteration is below threshold (or max_iters hit).
    let last = result.per_iter.last().unwrap();
    assert!(last.chaos < 1e-3 || result.iterations == 30);
    // Every iteration did some modeled work.
    for it in &result.per_iter {
        assert!(it.breakdown.total() > 0.0);
        assert!(it.nnz > 0);
    }
}
