//! Cross-crate integration tests: the distributed algorithms against the
//! serial reference, across grids, batch counts, kernel generations,
//! batching strategies, and semirings.

use spgemm_core::batched::BatchingStrategy;
use spgemm_core::{run_spgemm, KernelStrategy, MemoryBudget, RunConfig};
use spgemm_sparse::gen::{clustered_similarity, er_random, kmer_matrix, rmat};
use spgemm_sparse::ops::transpose;
use spgemm_sparse::semiring::{BoolOrAnd, MinPlusF64, PlusTimesF64, PlusTimesU64, Semiring};
use spgemm_sparse::spgemm::spgemm_spa;
use spgemm_sparse::CscMatrix;

fn check_all_configs<S: Semiring>(a: &CscMatrix<S::T>, b: &CscMatrix<S::T>, tag: &str)
where
    S::T: Send + Sync,
{
    let (reference, _) = spgemm_spa::<S>(a, b).expect("serial reference");
    for (p, l) in [(1usize, 1usize), (4, 1), (4, 4), (9, 1), (12, 3), (16, 4), (16, 16)] {
        for nb in [1usize, 3, 7] {
            for kernels in [KernelStrategy::New, KernelStrategy::Previous] {
                let mut cfg = RunConfig::new(p, l);
                cfg.kernels = kernels;
                cfg.forced_batches = Some(nb);
                let out = run_spgemm::<S>(&cfg, a, b).expect("distributed run");
                let c = out.c.expect("gathered product");
                assert!(
                    c.eq_modulo_order(&reference),
                    "{tag}: mismatch at p={p} l={l} b={nb} kernels={}",
                    kernels.name()
                );
            }
        }
    }
}

#[test]
fn er_square_u64_all_configs() {
    let a = er_random::<PlusTimesU64>(60, 60, 5, 1).map(|_| 2u64);
    let b = er_random::<PlusTimesU64>(60, 60, 5, 2).map(|_| 3u64);
    check_all_configs::<PlusTimesU64>(&a, &b, "er-u64");
}

#[test]
fn rectangular_no_divisibility() {
    // Dimensions deliberately coprime with every grid side used.
    let a = er_random::<PlusTimesU64>(53, 37, 4, 3).map(|_| 1u64);
    let b = er_random::<PlusTimesU64>(37, 41, 4, 4).map(|_| 1u64);
    check_all_configs::<PlusTimesU64>(&a, &b, "rectangular");
}

#[test]
fn rmat_power_law_square() {
    let a = rmat::<PlusTimesU64>(7, 8, None, true, 5).map(|_| 1u64);
    check_all_configs::<PlusTimesU64>(&a, &a, "rmat");
}

#[test]
fn kmer_aat_rectangular() {
    let a = kmer_matrix(40, 160, 3, 6);
    let at = transpose(&a);
    check_all_configs::<PlusTimesU64>(&a, &at, "kmer-aat");
}

#[test]
fn float_clustered_square() {
    let a = clustered_similarity(4, 12, 5, 1, 7);
    let (reference, _) = spgemm_spa::<PlusTimesF64>(&a, &a).unwrap();
    for (p, l, nb) in [(4usize, 1usize, 2usize), (16, 4, 3), (16, 16, 1)] {
        let mut cfg = RunConfig::new(p, l);
        cfg.forced_batches = Some(nb);
        let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &a).unwrap();
        assert!(
            out.c.unwrap().approx_eq(&reference, 1e-10),
            "float mismatch at p={p} l={l} b={nb}"
        );
    }
}

#[test]
fn min_plus_semiring_distributed() {
    // Two-hop shortest paths over (min, +): semiring generality end-to-end.
    let a = er_random::<MinPlusF64>(40, 40, 4, 8);
    let (reference, _) = spgemm_spa::<MinPlusF64>(&a, &a).unwrap();
    let mut cfg = RunConfig::new(16, 4);
    cfg.forced_batches = Some(3);
    let out = run_spgemm::<MinPlusF64>(&cfg, &a, &a).unwrap();
    let c = out.c.unwrap();
    assert!(c.eq_modulo_order(&reference));
}

#[test]
fn boolean_semiring_distributed() {
    let a = er_random::<BoolOrAnd>(50, 50, 3, 9);
    let (reference, _) = spgemm_spa::<BoolOrAnd>(&a, &a).unwrap();
    let mut cfg = RunConfig::new(9, 1);
    cfg.forced_batches = Some(2);
    let out = run_spgemm::<BoolOrAnd>(&cfg, &a, &a).unwrap();
    assert!(out.c.unwrap().eq_modulo_order(&reference));
}

#[test]
fn all_batching_strategies_agree() {
    let a = er_random::<PlusTimesU64>(48, 48, 5, 10).map(|_| 1u64);
    let (reference, _) = spgemm_spa::<PlusTimesU64>(&a, &a).unwrap();
    for strat in [
        BatchingStrategy::BlockCyclic,
        BatchingStrategy::Block,
        BatchingStrategy::Balanced,
    ] {
        let mut cfg = RunConfig::new(16, 4);
        cfg.batching = strat;
        cfg.forced_batches = Some(5);
        let out = run_spgemm::<PlusTimesU64>(&cfg, &a, &a).unwrap();
        assert!(out.c.unwrap().eq_modulo_order(&reference), "{strat:?}");
    }
}

/// The Balanced extension tightens the per-batch peak spread on matrices
/// with skewed column work, at identical results.
#[test]
fn balanced_batching_flattens_peaks_on_skewed_matrices() {
    // Column-gradient matrix: later columns are much denser.
    use spgemm_sparse::Triples;
    let n = 256usize;
    let mut t = Triples::new(n, n);
    let mut x = 9u64;
    for j in 0..n {
        let deg = 1 + j * 24 / n;
        for d in 0..deg {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(17);
            t.push(((x >> 33) as usize % n) as u32, j as u32, 1.0 + d as f64);
        }
    }
    let a = t.to_csc_dedup::<PlusTimesF64>();
    let (reference, _) = spgemm_spa::<PlusTimesF64>(&a, &a).unwrap();
    let run = |strat: BatchingStrategy| {
        let mut cfg = RunConfig::new(4, 1);
        cfg.batching = strat;
        cfg.forced_batches = Some(8);
        run_spgemm::<PlusTimesF64>(&cfg, &a, &a).unwrap()
    };
    let bal = run(BatchingStrategy::Balanced);
    assert!(bal.c.as_ref().unwrap().approx_eq(&reference, 1e-10));
    let blk = run(BatchingStrategy::Block);
    assert!(blk.c.as_ref().unwrap().approx_eq(&reference, 1e-10));
    // Peak footprint under Balanced must not exceed the plain-block peak
    // (gradient matrices concentrate whole batches of dense columns there).
    let peak = |o: &spgemm_core::RunOutput<f64>| *o.peak_bytes.iter().max().unwrap();
    assert!(
        peak(&bal) <= peak(&blk),
        "balanced peak {} should not exceed block peak {}",
        peak(&bal),
        peak(&blk)
    );
}

#[test]
fn empty_and_identity_edge_cases() {
    // Zero matrix in, zero matrix out.
    let z = CscMatrix::<u64>::zero(30, 30);
    let mut cfg = RunConfig::new(4, 1);
    cfg.forced_batches = Some(2);
    let out = run_spgemm::<PlusTimesU64>(&cfg, &z, &z).unwrap();
    assert_eq!(out.c.unwrap().nnz(), 0);

    // Identity times X equals X.
    let i = CscMatrix::identity(30);
    let x = er_random::<PlusTimesF64>(30, 30, 3, 11);
    let cfg = RunConfig::new(4, 4);
    let out = run_spgemm::<PlusTimesF64>(&cfg, &i, &x).unwrap();
    assert!(out.c.unwrap().approx_eq(&x, 1e-14));
}

#[test]
fn more_batches_than_columns_still_correct() {
    // b exceeding local column counts leaves some batches empty.
    let a = er_random::<PlusTimesU64>(20, 20, 3, 12).map(|_| 1u64);
    let (reference, _) = spgemm_spa::<PlusTimesU64>(&a, &a).unwrap();
    let mut cfg = RunConfig::new(4, 1);
    cfg.forced_batches = Some(15);
    let out = run_spgemm::<PlusTimesU64>(&cfg, &a, &a).unwrap();
    assert!(out.c.unwrap().eq_modulo_order(&reference));
}

#[test]
fn symbolic_driven_run_matches_forced_run() {
    let a = clustered_similarity(4, 16, 6, 1, 13);
    let (reference, _) = spgemm_spa::<PlusTimesF64>(&a, &a).unwrap();
    let mut cfg = RunConfig::new(16, 4);
    cfg.budget = MemoryBudget::new((a.nnz() * 24 * 2) * 4);
    let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &a).unwrap();
    assert!(out.nbatches >= 1);
    assert!(out.symbolic.is_some());
    assert!(out.c.unwrap().approx_eq(&reference, 1e-10));
}
