//! Property-based tests (proptest) on core invariants.

use proptest::prelude::*;
use spgemm_core::{run_spgemm, RunConfig};
use spgemm_sparse::merge::{merge_hash_sorted, merge_heap};
use spgemm_sparse::ops::{
    col_concat, col_split_blocks, cyclic_batch_cols, extract_cols, transpose,
};
use spgemm_sparse::semiring::PlusTimesU64;
use spgemm_sparse::spgemm::{spgemm_hash_unsorted, spgemm_heap, spgemm_spa, symbolic_col_counts};
use spgemm_sparse::{CscMatrix, Triples};

/// Strategy: an arbitrary sparse u64 matrix with shape up to `maxdim` and
/// up to `maxnnz` entries (duplicates combined by summation).
fn arb_matrix(maxdim: usize, maxnnz: usize) -> impl Strategy<Value = CscMatrix<u64>> {
    (1..=maxdim, 1..=maxdim).prop_flat_map(move |(nr, nc)| {
        proptest::collection::vec((0..nr as u32, 0..nc as u32, 1..5u64), 0..=maxnnz).prop_map(
            move |entries| {
                let mut t = Triples::with_capacity(nr, nc, entries.len());
                for (r, c, v) in entries {
                    t.push(r, c, v);
                }
                t.to_csc_dedup::<PlusTimesU64>()
            },
        )
    })
}

/// A conformable pair (A: m×k, B: k×n).
fn arb_pair(maxdim: usize, maxnnz: usize) -> impl Strategy<Value = (CscMatrix<u64>, CscMatrix<u64>)> {
    (1..=maxdim, 1..=maxdim, 1..=maxdim).prop_flat_map(move |(m, k, n)| {
        let a = proptest::collection::vec((0..m as u32, 0..k as u32, 1..5u64), 0..=maxnnz);
        let b = proptest::collection::vec((0..k as u32, 0..n as u32, 1..5u64), 0..=maxnnz);
        (a, b).prop_map(move |(ea, eb)| {
            let mut ta = Triples::with_capacity(m, k, ea.len());
            for (r, c, v) in ea {
                ta.push(r, c, v);
            }
            let mut tb = Triples::with_capacity(k, n, eb.len());
            for (r, c, v) in eb {
                tb.push(r, c, v);
            }
            (
                ta.to_csc_dedup::<PlusTimesU64>(),
                tb.to_csc_dedup::<PlusTimesU64>(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three local numeric kernels agree with the SPA oracle.
    #[test]
    fn kernels_agree((a, b) in arb_pair(24, 80)) {
        let (oracle, ostats) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
        let (hash, hstats) = spgemm_hash_unsorted::<PlusTimesU64>(&a, &b).unwrap();
        prop_assert!(hash.eq_modulo_order(&oracle));
        prop_assert_eq!(hstats.flops, ostats.flops);
        let (heap, _) = spgemm_heap::<PlusTimesU64>(&a, &b).unwrap();
        prop_assert!(heap.eq_modulo_order(&oracle));
    }

    /// Symbolic counts exactly predict numeric structure.
    #[test]
    fn symbolic_matches_numeric((a, b) in arb_pair(24, 80)) {
        let (counts, _) = symbolic_col_counts(&a, &b).unwrap();
        let (c, _) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
        for (j, &count) in counts.iter().enumerate() {
            prop_assert_eq!(count as usize, c.col_nnz(j));
        }
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution(m in arb_matrix(30, 100)) {
        prop_assert!(transpose(&transpose(&m)).eq_modulo_order(&m));
    }

    /// Column split / concat round-trips for any part count.
    #[test]
    fn split_concat_roundtrip(m in arb_matrix(30, 100), parts in 1usize..6) {
        let pieces = col_split_blocks(&m, parts);
        let back = col_concat(&pieces).unwrap();
        prop_assert!(back.eq_modulo_order(&m));
    }

    /// Block-cyclic batches cover all columns disjointly, and extracting
    /// them loses no entries.
    #[test]
    fn cyclic_batches_partition(m in arb_matrix(30, 100), b in 1usize..5, l in 1usize..5) {
        let mut seen = vec![false; m.ncols()];
        let mut total_nnz = 0usize;
        for t in 0..b {
            let cols = cyclic_batch_cols(m.ncols(), b, l, t);
            for &c in &cols {
                prop_assert!(!seen[c], "column {} in two batches", c);
                seen[c] = true;
            }
            total_nnz += extract_cols(&m, &cols).nnz();
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(total_nnz, m.nnz());
    }

    /// Merging k matrices equals the triple-concatenation sum, for both
    /// merge kernels.
    #[test]
    fn merges_equal_triple_sum(parts in proptest::collection::vec(arb_matrix(12, 30), 1..5)) {
        // Force identical shapes by padding to the max dimensions.
        let nr = parts.iter().map(|p| p.nrows()).max().unwrap();
        let nc = parts.iter().map(|p| p.ncols()).max().unwrap();
        let parts: Vec<CscMatrix<u64>> = parts
            .iter()
            .map(|p| {
                let mut t = Triples::with_capacity(nr, nc, p.nnz());
                for (r, c, v) in p.iter() {
                    t.push(r, c as u32, v);
                }
                t.to_csc()
            })
            .collect();
        let mut all = Triples::new(nr, nc);
        for p in &parts {
            for (r, c, v) in p.iter() {
                all.push(r, c as u32, v);
            }
        }
        let oracle = all.to_csc_dedup::<PlusTimesU64>();
        let (hash, _) = merge_hash_sorted::<PlusTimesU64>(&parts).unwrap();
        prop_assert!(hash.eq_modulo_order(&oracle));
        let sorted_parts: Vec<_> = parts.iter().map(|p| p.sorted_copy()).collect();
        let (heap, _) = merge_heap::<PlusTimesU64>(&sorted_parts).unwrap();
        prop_assert!(heap.eq_modulo_order(&oracle));
    }
}

proptest! {
    // The distributed runs spawn threads, so fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full distributed pipeline equals the serial product for
    /// arbitrary matrices, grid shapes and batch counts.
    #[test]
    fn distributed_equals_serial(
        (a, b) in arb_pair(20, 60),
        grid_idx in 0usize..4,
        nb in 1usize..4,
    ) {
        let (p, l) = [(4, 1), (4, 4), (9, 1), (8, 2)][grid_idx];
        let (reference, _) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
        let mut cfg = RunConfig::new(p, l);
        cfg.forced_batches = Some(nb);
        let out = run_spgemm::<PlusTimesU64>(&cfg, &a, &b).unwrap();
        prop_assert!(out.c.unwrap().eq_modulo_order(&reference));
    }
}
