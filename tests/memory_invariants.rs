//! The paper's central memory-constrained claims, as executable
//! invariants.

use spgemm_core::{run_spgemm, CoreError, MemoryBudget, RunConfig};
use spgemm_sparse::gen::{clustered_similarity, er_random};
use spgemm_sparse::ops::{permute_symmetric, random_permutation};
use spgemm_sparse::semiring::PlusTimesF64;

fn scrambled_clusters(nc: usize, cs: usize, intra: usize, seed: u64) -> spgemm_sparse::CscMatrix<f64> {
    let m = clustered_similarity(nc, cs, intra, 1, seed);
    permute_symmetric(&m, &random_permutation(m.nrows(), seed ^ 0xAA))
}

/// With the symbolic batch count, no rank's modeled footprint exceeds its
/// per-process budget — the property Alg. 3 exists to guarantee.
#[test]
fn no_rank_exceeds_budget_at_symbolic_b() {
    // Matrices large enough that a batch's block-cyclic blocks span
    // several columns; with single-column blocks the per-batch load can
    // exceed the symbolic estimate's even-split assumption (Alg. 3 divides
    // the whole-run maximum by b), which is a miniaturization artifact,
    // not an algorithmic one.
    for (p, l, seed) in [(4usize, 1usize, 21u64), (16, 4, 22), (16, 16, 23), (64, 16, 24)] {
        let a = scrambled_clusters(16, 64, 8, seed);
        let inputs = a.nnz() * 24 * 2;
        let mut cfg = RunConfig::new(p, l);
        cfg.budget = MemoryBudget::new(inputs * 4);
        cfg.discard_output = true;
        let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &a).unwrap();
        // Alg. 3 divides the whole-run per-process maximum evenly across
        // batches; individual batches deviate by the column-density skew of
        // their block-cyclic sample (a few percent here). Real deployments
        // absorb this in allocator slack; we assert the bound with that
        // same small engineering margin.
        let per_proc = cfg.budget.per_process(p);
        let limit = per_proc + per_proc / 20;
        for (rank, &peak) in out.peak_bytes.iter().enumerate() {
            assert!(
                peak <= limit,
                "p={p} l={l}: rank {rank} peaked at {peak} > {limit} (b={})",
                out.nbatches
            );
        }
        assert!(out.nbatches > 1, "p={p} l={l}: budget should force batching");
    }
}

/// Without batching (forced b = 1) the same budget would be breached: the
/// previous SUMMA3D regime in which "the algorithm simply fails".
#[test]
fn unbatched_run_would_breach_the_same_budget() {
    let a = scrambled_clusters(6, 24, 8, 31);
    let inputs = a.nnz() * 24 * 2;
    let p = 16;
    let budget = MemoryBudget::new(inputs * 4);

    let mut with_symbolic = RunConfig::new(p, 4);
    with_symbolic.budget = budget;
    with_symbolic.discard_output = true;
    let batched = run_spgemm::<PlusTimesF64>(&with_symbolic, &a, &a).unwrap();
    assert!(batched.nbatches > 1);

    let mut forced_single = RunConfig::new(p, 4);
    forced_single.budget = budget;
    forced_single.forced_batches = Some(1);
    forced_single.discard_output = true;
    let unbatched = run_spgemm::<PlusTimesF64>(&forced_single, &a, &a).unwrap();
    let per_proc = budget.per_process(p);
    let worst = *unbatched.peak_bytes.iter().max().unwrap();
    assert!(
        worst > per_proc,
        "unbatched peak {worst} should exceed the per-process budget {per_proc}"
    );
}

/// Eq. 2 lower bound never exceeds the exact symbolic count, and more
/// aggregate memory never increases the batch count.
#[test]
fn batch_count_monotone_in_memory_and_bounded_below() {
    let a = scrambled_clusters(8, 24, 10, 41);
    let inputs = a.nnz() * 24 * 2;
    let mut prev_b = usize::MAX;
    for mult in [3usize, 6, 12, 48] {
        let mut cfg = RunConfig::new(16, 4);
        cfg.budget = MemoryBudget::new(inputs * mult);
        cfg.discard_output = true;
        let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &a).unwrap();
        let sym = out.symbolic.unwrap();
        let eq2 = sym.eq2_lower_bound.expect("inputs fit");
        assert!(
            out.nbatches >= eq2,
            "exact b {} below Eq. 2 bound {eq2} at mult={mult}",
            out.nbatches
        );
        assert!(
            out.nbatches <= prev_b,
            "batch count grew with memory: {} -> {} at mult={mult}",
            prev_b,
            out.nbatches
        );
        prev_b = out.nbatches;
    }
    assert_eq!(prev_b, 1, "ample memory must reach b = 1");
}

/// When even the inputs do not fit, the run fails with the dedicated
/// error instead of computing garbage.
#[test]
fn inputs_exceeding_memory_error_path() {
    let a = er_random::<PlusTimesF64>(64, 64, 8, 51);
    let mut cfg = RunConfig::new(4, 1);
    cfg.budget = MemoryBudget::new(a.nnz() * 24); // less than A + B
    let err = run_spgemm::<PlusTimesF64>(&cfg, &a, &a).unwrap_err();
    assert!(matches!(err, CoreError::InputsExceedMemory { .. }), "{err}");
}

/// A single pathological column whose intermediate exceeds the leftover
/// memory makes column-wise batching infeasible — the upper-bound error.
#[test]
fn single_dense_column_makes_batching_infeasible() {
    // One column of B selects *every* column of A: its product touches
    // every row — the largest single-column intermediate possible.
    let n = 64;
    let p = 4;
    let a = er_random::<PlusTimesF64>(n, n, 12, 71);
    let mut t = spgemm_sparse::Triples::new(n, n);
    for i in 0..n as u32 {
        t.push(i, 0, 1.0);
    }
    let b = t.to_csc();

    // Probe with ample memory to learn the symbolic quantities, then set a
    // budget that admits the inputs but not the dense column.
    let probe_cfg = RunConfig::new(p, 1);
    let probe = run_spgemm::<PlusTimesF64>(&probe_cfg, &a, &b).unwrap();
    let sym = probe.symbolic.unwrap();
    assert!(sym.max_col_unmerged_nnz > 1);
    let per_proc =
        24 * (sym.max_nnz_a + sym.max_nnz_b) as usize + 24 * sym.max_col_unmerged_nnz as usize / 2;
    let mut cfg = RunConfig::new(p, 1);
    cfg.budget = MemoryBudget::new(per_proc * p);
    let err = run_spgemm::<PlusTimesF64>(&cfg, &a, &b).unwrap_err();
    assert!(
        matches!(err, CoreError::BatchingInfeasible { .. }),
        "expected BatchingInfeasible, got: {err}"
    );
}

/// The symbolic outcome reports both bounds: `eq2 ≤ b_exact ≤ upper`.
#[test]
fn symbolic_reports_consistent_bounds() {
    let a = scrambled_clusters(8, 24, 10, 81);
    let mut cfg = RunConfig::new(16, 4);
    cfg.budget = MemoryBudget::new(a.nnz() * 24 * 2 * 4);
    cfg.discard_output = true;
    let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &a).unwrap();
    let sym = out.symbolic.unwrap();
    assert!(sym.eq2_lower_bound.unwrap() <= out.nbatches);
    assert!(out.nbatches <= sym.upper_bound);
    assert!(sym.max_col_unmerged_nnz <= sym.max_unmerged_nnz);
    assert!(sym.max_col_unmerged_nnz > 0);
}

/// The symbolic estimate of per-process unmerged intermediates is an upper
/// bound for what the batched execution actually materializes per batch.
#[test]
fn symbolic_unmerged_estimate_covers_observed_peaks() {
    let a = scrambled_clusters(6, 20, 8, 61);
    let p = 16;
    let mut cfg = RunConfig::new(p, 4);
    cfg.budget = MemoryBudget::new(a.nnz() * 24 * 2 * 5);
    cfg.discard_output = true;
    let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &a).unwrap();
    let sym = out.symbolic.unwrap();
    // Peak ≤ inputs + one batch's worth of the max unmerged intermediate.
    let bound = (sym.max_nnz_a + sym.max_nnz_b) as usize * 24
        + (sym.max_unmerged_nnz as usize).div_ceil(out.nbatches) * 24 * 2;
    for &peak in &out.peak_bytes {
        assert!(
            peak <= bound,
            "peak {peak} exceeds symbolic-derived bound {bound} (b={})",
            out.nbatches
        );
    }
}
