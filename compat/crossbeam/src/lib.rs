//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the two crossbeam facilities `spgemm-simgrid` relies on, as facades
//! over `std`:
//!
//! * [`channel`] — unbounded MPSC channels (`unbounded`, `Sender`,
//!   `Receiver`) over `std::sync::mpsc`. `std`'s `Sender` has been `Sync`
//!   since Rust 1.72, which is the property the simulated-MPI world state
//!   (`Arc<WorldShared>` holding every rank's sender) needs.
//! * [`thread`] — scoped threads with the crossbeam builder API
//!   (`scope`, `Scope::builder`, `name`, `stack_size`, spawn closures
//!   receiving a `&Scope` argument) over `std::thread::scope`, which has
//!   identical lifetime semantics since Rust 1.63.

pub mod channel {
    //! Unbounded channels with crossbeam's signatures over `std::sync::mpsc`.

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel. Clonable and `Sync`.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send `value`; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails if all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's builder API over `std::thread`.

    use std::any::Any;
    use std::io;

    /// Handle to a spawned scoped thread.
    pub type ScopedJoinHandle<'scope, T> = std::thread::ScopedJoinHandle<'scope, T>;

    /// A thread scope: threads spawned through it may borrow `'env` data
    /// and are all joined before [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Start configuring a new scoped thread.
        pub fn builder(&self) -> ScopedThreadBuilder<'scope, 'env> {
            ScopedThreadBuilder {
                scope: self.inner,
                builder: std::thread::Builder::new(),
            }
        }

        /// Spawn with default settings. The closure receives a `&Scope`
        /// so it can spawn further siblings (crossbeam convention).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Builder mirroring `crossbeam::thread::ScopedThreadBuilder`.
    pub struct ScopedThreadBuilder<'scope, 'env: 'scope> {
        scope: &'scope std::thread::Scope<'scope, 'env>,
        builder: std::thread::Builder,
    }

    impl<'scope, 'env> ScopedThreadBuilder<'scope, 'env> {
        /// Name the thread (appears in panic messages and debuggers).
        pub fn name(mut self, name: String) -> Self {
            self.builder = self.builder.name(name);
            self
        }

        /// Set the thread's stack size in bytes.
        pub fn stack_size(mut self, size: usize) -> Self {
            self.builder = self.builder.stack_size(size);
            self
        }

        /// Spawn the configured thread; the closure receives a `&Scope`.
        pub fn spawn<F, T>(self, f: F) -> io::Result<ScopedJoinHandle<'scope, T>>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = self.scope;
            self.builder
                .spawn_scoped(scope, move || f(&Scope { inner: scope }))
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned.
    ///
    /// All spawned threads are joined before this returns. Crossbeam
    /// returns `Err` with the panic payload if an **unjoined** thread
    /// panicked; `std::thread::scope` instead resumes the panic directly,
    /// so callers that join every handle themselves (as `spgemm-simgrid`
    /// does) observe identical behaviour, and the `Result` wrapper is kept
    /// purely for signature compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn sender_is_sync_and_shareable() {
        fn assert_sync<T: Sync>(_: &T) {}
        let (tx, rx) = super::channel::unbounded::<usize>();
        assert_sync(&tx);
        let shared = Arc::new(tx);
        super::thread::scope(|s| {
            for i in 0..4 {
                let shared = Arc::clone(&shared);
                s.spawn(move |_| shared.send(i).unwrap());
            }
        })
        .unwrap();
        drop(shared);
        let mut got: Vec<usize> = std::iter::from_fn(|| rx.recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scope_joins_and_borrows() {
        let counter = AtomicUsize::new(0);
        let r = super::thread::scope(|s| {
            let mut handles = Vec::new();
            for i in 0..8 {
                let h = s
                    .builder()
                    .name(format!("worker-{i}"))
                    .stack_size(128 * 1024)
                    .spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        std::thread::current().name().map(str::to_string)
                    })
                    .unwrap();
                handles.push(h);
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap().unwrap())
                .collect::<Vec<_>>()
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        assert!(r.contains(&"worker-0".to_string()));
    }

    #[test]
    fn join_surfaces_panics() {
        super::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            let err = h.join().unwrap_err();
            assert_eq!(err.downcast_ref::<&str>(), Some(&"boom"));
        })
        .unwrap();
    }
}
