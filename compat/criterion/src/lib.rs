//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the benchmark-harness API surface the workspace's `criterion_*` benches
//! use: [`criterion_group!`] / [`criterion_main!`], benchmark groups with
//! `sample_size`, `bench_function` / `bench_with_input` with
//! [`BenchmarkId`], and `Bencher::iter`.
//!
//! Measurement is deliberately simple: each benchmark is warmed up, an
//! iteration count is calibrated to a ~200 ms budget, and the mean, min
//! and max per-iteration times over `sample_size` samples are printed.
//! No statistical regression analysis, plotting, or disk state — the
//! numbers are for relative comparison within one run.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group: a function name plus a
/// displayed parameter, printed as `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("kernel", size)` → `kernel/size`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id with no parameter part.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level harness context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = group_name.into();
        println!("\n== benchmark group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (upstream default is 100;
    /// the workspace's benches set 10 for the heavy kernels).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark a routine that takes no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id);
        self
    }

    /// End the group (kept for API compatibility; prints a terminator).
    pub fn finish(self) {
        println!("== end group: {} ==", self.name);
    }
}

/// Target wall-clock budget for one benchmark's measurement phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Timing context handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// (mean per-iteration nanoseconds, iterations) per sample.
    samples: Vec<(f64, u64)>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Time `routine`, calibrating iteration count to the budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: one untimed call, then estimate cost.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = MEASURE_BUDGET.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (per_sample / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = start.elapsed();
            self.samples
                .push((dt.as_nanos() as f64 / iters as f64, iters));
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no measurement (Bencher::iter never called)");
            return;
        }
        let mean =
            self.samples.iter().map(|&(ns, _)| ns).sum::<f64>() / self.samples.len() as f64;
        let min = self.samples.iter().map(|&(ns, _)| ns).fold(f64::INFINITY, f64::min);
        let max = self
            .samples
            .iter()
            .map(|&(ns, _)| ns)
            .fold(f64::NEG_INFINITY, f64::max);
        let iters = self.samples[0].1;
        println!(
            "{group}/{id}: time [{} .. {} .. {}] ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            self.samples.len(),
            iters
        );
    }
}

/// Human-readable nanoseconds.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("kernel", 64).id, "kernel/64");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(10.0).ends_with("ns"));
        assert!(fmt_ns(10_000.0).ends_with("us"));
        assert!(fmt_ns(10_000_000.0).ends_with("ms"));
        assert!(fmt_ns(10_000_000_000.0).ends_with("s"));
    }
}
