//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, API-compatible subset of `rand` 0.8: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! (`gen`, `gen_range`) for the types the generators and tests draw.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! in the seed, statistically strong enough for synthetic-matrix
//! generation. Streams do **not** match upstream `rand`'s ChaCha-based
//! `StdRng` (upstream explicitly does not promise cross-version stream
//! stability either); everything in this workspace that depends on
//! determinism only requires self-consistency.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from the generator's "standard" distribution
/// (`Rng::gen`): floats in `[0, 1)`, integers over their full range, bools.
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform value below `n` (`n > 0`) by widening multiply — unbiased enough
/// for synthetic data; deterministic in the stream.
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span as u64) as $t)
            }
        }
    )*};
}
range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// User-facing extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli(p) draw.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirror of `rand::SeedableRng`, restricted to the `seed_from_u64` entry
/// point the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — the recommended seeder for xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.gen_range(0..10usize);
            assert!(a < 10);
            let b = rng.gen_range(1..=8u64);
            assert!((1..=8).contains(&b));
            let c = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&c));
            let d = rng.gen_range(0..=0usize);
            assert_eq!(d, 0);
        }
    }

    #[test]
    fn ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
