//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of proptest's API that the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for integer ranges and tuples of strategies;
//! * [`collection::vec`] with `Range`/`RangeInclusive` size bounds;
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   plus [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from upstream, deliberately accepted: no shrinking (a
//! failing case panics with the case's seed printed, which is enough to
//! re-run deterministically), and value streams differ from upstream's.
//! Case generation is fully deterministic per `(test name, case index)`,
//! so failures reproduce exactly across runs.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Value`.
    ///
    /// Unlike upstream (value trees + shrinking), generation here is a
    /// single draw from a deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Keep only values satisfying `pred`; panics if 1000 consecutive
        /// draws all fail (upstream rejects the test case instead).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                whence,
                pred,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy producing a fixed value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone, Copy, Debug)]
    pub struct Filter<S, F> {
        base: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.base.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Create a [`VecStrategy`] generating between `size.lo` and
    /// `size.hi` (inclusive) elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case scheduling.

    /// Per-test configuration; only `cases` is modelled.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator (SplitMix64) seeded from the test's name
    /// and case index, so every run generates the same cases and a failure
    /// message's case index pinpoints the reproducing input.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value below `n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert `cond`, reporting the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        assert_eq!($lhs, $rhs)
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        assert_eq!($lhs, $rhs, $($fmt)+)
    };
}

/// Assert inequality, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        assert_ne!($lhs, $rhs)
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        assert_ne!($lhs, $rhs, $($fmt)+)
    };
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// item expands to a test running `body` over `cases` generated inputs.
///
/// An optional leading `#![proptest_config(expr)]` sets the config for
/// every property in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($items)* }
    };
}

/// Internal muncher for [`proptest!`] — expands one `fn` item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case as u64,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __guard = $crate::CasePanicContext::new(stringify!($name), __case);
                $body
                __guard.disarm();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Prints the failing case index on unwind so a deterministic repro is
/// always one `TestRng::for_case(name, index)` away.
#[doc(hidden)]
pub struct CasePanicContext {
    name: &'static str,
    case: u32,
    armed: bool,
}

impl CasePanicContext {
    pub fn new(name: &'static str, case: u32) -> Self {
        CasePanicContext {
            name,
            case,
            armed: true,
        }
    }

    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CasePanicContext {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed at case index {} \
                 (deterministic; rerun reproduces it)",
                self.name, self.case
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..1000 {
            let (a, b) = (1..=5usize, 0..7u32).generate(&mut rng);
            assert!((1..=5).contains(&a));
            assert!(b < 7);
        }
    }

    #[test]
    fn vec_respects_size_bounds() {
        let s = crate::collection::vec(0..10u64, 2..=4);
        let mut rng = TestRng::for_case("v", 3);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let s = (1..=4usize).prop_flat_map(|n| {
            crate::collection::vec(0..100u32, n..=n).prop_map(move |v| (n, v))
        });
        let mut rng = TestRng::for_case("fm", 1);
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = crate::collection::vec(0..1000u64, 0..=10);
        let a = s.generate(&mut TestRng::for_case("d", 5));
        let b = s.generate(&mut TestRng::for_case("d", 5));
        assert_eq!(a, b);
        // Different cases give different draws (overwhelmingly).
        let c = s.generate(&mut TestRng::for_case("d", 6));
        let d2 = s.generate(&mut TestRng::for_case("d", 7));
        assert!(a != c || c != d2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro binds tuple patterns and runs bodies per case.
        #[test]
        fn macro_smoke((a, b) in (0..50u32, 0..50u32), extra in 1usize..4) {
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(extra.clamp(1, 3), extra);
            prop_assert_ne!(extra, 0);
        }
    }

    proptest! {
        /// Default config path also compiles and runs.
        #[test]
        fn macro_default_config(x in 0..10u64) {
            prop_assert!(x < 10);
        }
    }
}
